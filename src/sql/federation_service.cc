#include "sql/federation_service.h"

#include "connector/sampler.h"
#include "sql/parser.h"

namespace textjoin {

namespace {

/// Fingerprint of the per-shard document counts (FNV-1a over the counts).
/// The corpus watch compares fingerprints instead of one total, so growth
/// in ANY single shard bumps the cache epoch — even when offset by
/// shrinkage elsewhere. For a single backend this degenerates to watching
/// the one document count, as before.
size_t CorpusFingerprint(const BackendTopology& topology) {
  uint64_t h = 1469598103934665603ull;
  for (const BackendTopology::Shard& shard : topology.shards) {
    uint64_t count = shard.replicas.empty()
                         ? 0
                         : shard.replicas[0].corpus->num_documents();
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (count >> (byte * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  // SIZE_MAX is the "not yet observed" sentinel; avoid colliding with it.
  const size_t fp = static_cast<size_t>(h);
  return fp == static_cast<size_t>(-1) ? 0 : fp;
}

}  // namespace

Status FederationService::EnsureStatistics(const FederatedQuery& query) {
  if (options_.oracle_stats) {
    // Exact statistics computed engine-side (no metered traffic); cheap
    // enough to recompute per query, and idempotent. Probes go to replica
    // 0 of every shard and the counts are summed — docids partition
    // disjointly, so the sums equal the single-corpus numbers.
    std::vector<const SearchableCorpus*> shards;
    shards.reserve(backend_->num_shards());
    for (const BackendTopology::Shard& shard : backend_->topology().shards) {
      shards.push_back(shard.replicas[0].corpus);
    }
    return ComputeExactStats(query, *catalog_, shards, registry_);
  }
  // Sampling mode (paper Section 4.2): probe the source for predicates we
  // have not seen before; table stats are computed locally. All traffic
  // goes through stats_source_ — the bare router, so sampling sees the
  // whole sharded corpus without touching breakers or limiter permits —
  // and its meter is the stats meter.
  for (const RelationRef& rel : query.relations) {
    if (!registry_.GetTableStats(rel.table_name).ok()) {
      TEXTJOIN_ASSIGN_OR_RETURN(Table * table,
                                catalog_->GetTable(rel.table_name));
      registry_.SetTableStats(rel.table_name, TableStats::Analyze(*table));
    }
  }
  for (const TextJoinPredicate& pred : query.text_joins) {
    if (registry_.HasTextJoinStats(pred.column_ref, pred.field)) continue;
    const size_t dot = pred.column_ref.find('.');
    if (dot == std::string::npos) {
      return Status::InvalidArgument("text join column '" + pred.column_ref +
                                     "' must be qualified");
    }
    TEXTJOIN_ASSIGN_OR_RETURN(
        const RelationRef* rel,
        query.FindRelation(pred.column_ref.substr(0, dot)));
    TEXTJOIN_ASSIGN_OR_RETURN(Table * table,
                              catalog_->GetTable(rel->table_name));
    TEXTJOIN_ASSIGN_OR_RETURN(
        size_t col,
        table->schema().WithQualifier(rel->name()).Resolve(pred.column_ref));
    TEXTJOIN_ASSIGN_OR_RETURN(
        PredicateStatsEstimate est,
        EstimatePredicateStats(*table, col, *stats_source_, pred.field,
                               options_.sample_size, rng_));
    registry_.SetTextJoinStats(pred.column_ref, pred.field, est.selectivity,
                               est.fanout);
  }
  for (const TextSelection& sel : query.text_selections) {
    if (registry_.GetTextSelectionStats(sel.term, sel.field).ok()) continue;
    // One short-form search measures the selection exactly.
    TextQueryPtr probe = TextQuery::Term(sel.field, sel.term);
    TEXTJOIN_ASSIGN_OR_RETURN(std::vector<std::string> docids,
                              stats_source_->Search(*probe));
    // Postings estimate: result size is a lower bound on list length; use
    // it (the cost term is tiny under c_p).
    registry_.SetTextSelectionStats(sel.term, sel.field,
                                    static_cast<double>(docids.size()),
                                    static_cast<double>(docids.size()));
  }
  return Status::OK();
}

Result<PlanNodePtr> FederationService::Plan(const FederatedQuery& query) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  TEXTJOIN_RETURN_IF_ERROR(EnsureStatistics(query));
  const BackendTopology& topology = backend_->topology();
  Enumerator enumerator(catalog_, &registry_, topology.total_documents(),
                        topology.max_search_terms(), options_.enumerator);
  return enumerator.Optimize(query);
}

Result<QueryOutcome> FederationService::Run(const std::string& sql) {
  return Run(sql, RunOptions{});
}

Result<QueryOutcome> FederationService::Run(const std::string& sql,
                                            const RunOptions& run) {
  // One per-query token is THE cancellation path: the client's RunOptions
  // token links into it, deadline expiry arms it, and Drain() fires it
  // with kShutdown. Registered before any work so a drain that starts
  // while we parse still reaches this query.
  CancelToken token = CancelToken::Make();
  CancelToken::Registration client_link;
  if (run.cancel.valid()) client_link = run.cancel.LinkChild(token);
  uint64_t query_id = 0;
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (draining_) {
      return Status::Unavailable("service draining; new queries refused");
    }
    query_id = next_query_id_++;
    active_.emplace(query_id, token);
  }
  // Unregister on EVERY exit path; the notify wakes a waiting Drain().
  struct ActiveGuard {
    FederationService* service;
    uint64_t id;
    ~ActiveGuard() {
      {
        std::lock_guard<std::mutex> lock(service->lifecycle_mu_);
        service->active_.erase(id);
      }
      service->lifecycle_cv_.notify_all();
    }
  } unregister{this, query_id};
  // Ambient for this thread: statistics sampling, planning, and the
  // executor's inline stages all observe the token.
  CancelScope cancel_scope(token);

  TEXTJOIN_ASSIGN_OR_RETURN(FederatedQuery query, ParseQuery(sql, options_.text));
  TEXTJOIN_ASSIGN_OR_RETURN(PlanNodePtr plan, Plan(query));

  // Query deadline: per-call override, else the service default, else
  // none. Computed and checked on deadline_clock everywhere (the one
  // injectable query-deadline clock). Expiry arms the SAME token, so
  // deadline aborts and client aborts take one cooperative path.
  const std::chrono::microseconds budget =
      run.deadline.value_or(options_.default_deadline);
  const auto& deadline_clock = options_.deadline_clock;
  const auto now = [&deadline_clock] {
    return deadline_clock ? deadline_clock() : std::chrono::steady_clock::now();
  };
  const auto deadline_tp = budget.count() > 0
                               ? now() + budget
                               : std::chrono::steady_clock::time_point::max();
  if (deadline_tp != std::chrono::steady_clock::time_point::max()) {
    token.SetDeadline(deadline_tp, deadline_clock);
  }
  const int priority = run.priority.value_or(options_.default_priority);
  TEXTJOIN_RETURN_IF_ERROR(token.Check());

  // Admission: bounded queueing for an execution slot; sheds queries whose
  // remaining deadline cannot cover the plan's estimated cost, and sheds
  // queued entries immediately when their token fires. The ticket holds
  // the slot for the rest of this call.
  AdmissionTicket ticket;
  if (admission_ != nullptr) {
    TEXTJOIN_ASSIGN_OR_RETURN(
        ticket,
        admission_->Admit(plan->est_cost, deadline_tp, priority, token));
  }

  // A private router per call isolates its logical meter: the outcome's
  // delta is exact even when other Run()s execute concurrently. The router
  // rebuilds the chain per replica from the ChainSpec —
  //   meter -> [replica decorator] -> [chaos/test decorator] ->
  //   [resilient] -> [limiter] -> mux -> [hedging] -> router
  // — with the shared breakers/limiters/hedge controllers from backend_,
  // and the cross-query cache goes OUTERMOST, above the router, so a hit
  // skips scatter, hedging, retries, breakers and the meter entirely. For
  // a single backend this chain is layer-for-layer the pre-topology one.
  // Declaration order matters: reverse destruction tears the stack down
  // outside-in, and each shard's ~HedgedTextSource (inside the router)
  // waits out straggling hedge losers before the layers they call die.
  const uint64_t opens_before = backend_->breaker_opens_total();
  std::unique_ptr<ShardedTextSource> router =
      backend_->MakeQuerySource(options_.execution_source_decorator);
  router->set_failure_mode(options_.failure_mode);
  TextSource* exec_source = router.get();
  std::unique_ptr<CachingTextSource> caching;
  if (cache_ != nullptr) {
    // Corpus-change watch: a different per-shard document-count
    // fingerprint than last observed means cached results may be stale —
    // drop everything. (Changes that keep the counts need an explicit
    // InvalidateCache().)
    const size_t corpus = CorpusFingerprint(backend_->topology());
    const size_t previous = last_corpus_size_.exchange(corpus);
    if (previous != static_cast<size_t>(-1) && previous != corpus) {
      cache_->AdvanceEpoch();
    }
    caching = std::make_unique<CachingTextSource>(exec_source, cache_);
    exec_source = caching.get();
  }
  ExecutorOptions exec_options;
  exec_options.parallelism = options_.parallelism;
  exec_options.failure_mode = options_.failure_mode;
  exec_options.deadline = deadline_tp;
  exec_options.priority = priority;
  exec_options.clock = deadline_clock;
  exec_options.cancel = token;
  PlanExecutor executor(catalog_, exec_source, exec_options, pool_.get());
  QueryOutcome outcome;
  TEXTJOIN_ASSIGN_OR_RETURN(
      outcome.rows, executor.Execute(*plan, query, &outcome.profile,
                                     &outcome.degradation));
  if (options_.chain.resilience.has_value()) {
    const ResilienceStats stats = router->resilience_stats();
    outcome.degradation.retries = stats.retries;
    outcome.degradation.deadline_hits = stats.deadline_hits;
    outcome.degradation.breaker_rejections = stats.breaker_rejections;
    outcome.degradation.breaker_opens =
        options_.chain.resilience->enable_breaker
            ? backend_->breaker_opens_total() - opens_before
            : stats.breaker_opens;
  }
  if (caching != nullptr) outcome.cache = caching->activity();
  // The overload account: per-query decorator activity plus the shared
  // controllers' current state. Goes into the profile too, so
  // ExplainAnalyze renders its `| overload` line.
  if (options_.chain.limiter.has_value()) {
    outcome.overload.limiter_waits = router->limiter_activity().waits;
    outcome.overload.limit = backend_->limit_total();
  }
  if (options_.chain.hedging.has_value()) {
    router->Quiesce();  // Straggling losers still charge the waste meter.
    const HedgeActivity activity = router->hedge_activity();
    outcome.overload.hedges = activity.hedges;
    outcome.overload.hedge_wins = activity.hedge_wins;
    outcome.overload.hedges_suppressed = activity.suppressed;
    outcome.overload.hedge_waste = activity.waste;
    outcome.overload.hedge_losers_cancelled = activity.losers_cancelled;
  }
  outcome.overload.shed_operations = outcome.degradation.shed_operations;
  outcome.overload.cancelled_operations =
      outcome.degradation.cancelled_operations;
  outcome.overload.admission_wait_seconds = ticket.wait_seconds();
  outcome.profile.overload = outcome.overload;
  if (!backend_->topology().single()) {
    // Per-shard physical attribution — and the honest account of shard
    // contributions a best-effort broadcast dropped.
    outcome.shards = router->activity();
    if (outcome.shards.dropped_shards > 0) {
      outcome.degradation.skipped_operations += outcome.shards.dropped_shards;
      outcome.degradation.complete = false;
    }
    outcome.profile.shards = outcome.shards;
  }
  outcome.meter_delta = router->meter();
  outcome.chosen_plan = plan->ToString(query);
  outcome.plan = std::move(plan);
  cumulative_.Add(outcome.meter_delta);
  return outcome;
}

// ---------------------------------------------------------------------------
// QueryHandle / Launch / Drain

/// The handle's shared half: the worker thread and its (write-once)
/// outcome. The join in Await()/~QueryHandle is the synchronization point
/// for `result`, so no further locking is needed.
struct FederationService::QueryHandle::Shared {
  std::thread thread;
  std::optional<Result<QueryOutcome>> result;
};

FederationService::QueryHandle::~QueryHandle() {
  if (shared_ != nullptr && shared_->thread.joinable()) {
    shared_->thread.join();
  }
}

void FederationService::QueryHandle::Cancel(std::string reason) {
  token_.Cancel(CancelReason::kClient, std::move(reason));
}

Result<QueryOutcome> FederationService::QueryHandle::Await() {
  if (shared_ == nullptr) {
    return Status::InvalidArgument("Await on an empty QueryHandle");
  }
  if (shared_->thread.joinable()) shared_->thread.join();
  if (!shared_->result.has_value()) {
    return Status::InvalidArgument("QueryHandle already awaited");
  }
  Result<QueryOutcome> result = *std::move(shared_->result);
  shared_->result.reset();
  return result;
}

FederationService::QueryHandle FederationService::Launch(const std::string& sql,
                                                         RunOptions run) {
  QueryHandle handle;
  handle.token_ = CancelToken::Make();
  // An external RunOptions token keeps working: it fans into the handle's.
  if (run.cancel.valid()) handle.link_ = run.cancel.LinkChild(handle.token_);
  run.cancel = handle.token_;
  handle.shared_ = std::make_shared<QueryHandle::Shared>();
  std::shared_ptr<QueryHandle::Shared> shared = handle.shared_;
  handle.shared_->thread = std::thread(
      [this, shared, sql, run] { shared->result.emplace(Run(sql, run)); });
  return handle;
}

FederationService::DrainReport FederationService::Drain(
    std::chrono::microseconds budget) {
  std::unique_lock<std::mutex> lock(lifecycle_mu_);
  draining_ = true;  // From here on, Run()/Launch() refuse with kUnavailable.
  DrainReport report;
  report.in_flight = active_.size();
  // Give in-flight queries the budget to finish on their own. Real clock:
  // draining is an operational action, not part of any simulated workload.
  const auto deadline = std::chrono::steady_clock::now() + budget;
  lifecycle_cv_.wait_until(lock, deadline, [this] { return active_.empty(); });
  report.finished = report.in_flight - active_.size();
  if (!active_.empty()) {
    // Hard-cancel the stragglers through their own tokens — the same
    // cooperative path client aborts take — then wait for them to unwind
    // (they must release permits, tickets and pool jobs on the way out).
    report.cancelled = active_.size();
    for (auto& [id, token] : active_) {
      token.Cancel(CancelReason::kShutdown,
                   "service drain budget exhausted; query cancelled");
    }
    lifecycle_cv_.wait(lock, [this] { return active_.empty(); });
  }
  return report;
}

Result<std::string> FederationService::Explain(const std::string& sql) {
  TEXTJOIN_ASSIGN_OR_RETURN(FederatedQuery query, ParseQuery(sql, options_.text));
  TEXTJOIN_ASSIGN_OR_RETURN(PlanNodePtr plan, Plan(query));
  return query.ToString() + "\n" + plan->ToString(query);
}

}  // namespace textjoin
