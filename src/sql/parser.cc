#include "sql/parser.h"

#include <optional>

#include "common/string_util.h"
#include "sql/lexer.h"

namespace textjoin {
namespace {

/// Recursive-descent parser over the lexed token stream.
class Parser {
 public:
  Parser(std::vector<SqlToken> tokens, const TextRelationDecl& text)
      : tokens_(std::move(tokens)),
        text_(text),
        text_table_name_(text.alias) {}

  Result<FederatedQuery> Parse() {
    FederatedQuery query;
    query.text = text_;
    TEXTJOIN_RETURN_IF_ERROR(ExpectKeyword("select"));
    if (ConsumeKeyword("distinct")) query.distinct = true;
    TEXTJOIN_RETURN_IF_ERROR(ParseSelectList(query));
    TEXTJOIN_RETURN_IF_ERROR(ExpectKeyword("from"));
    TEXTJOIN_RETURN_IF_ERROR(ParseFromList(query));
    if (ConsumeKeyword("where")) {
      TEXTJOIN_RETURN_IF_ERROR(ParseConjunct(query));
      while (ConsumeKeyword("and")) {
        TEXTJOIN_RETURN_IF_ERROR(ParseConjunct(query));
      }
    }
    if (ConsumeKeyword("group")) {
      TEXTJOIN_RETURN_IF_ERROR(ExpectKeyword("by"));
      TEXTJOIN_ASSIGN_OR_RETURN(std::string first, ParseColumnRef());
      query.group_by.push_back(std::move(first));
      while (ConsumeSymbol(",")) {
        TEXTJOIN_ASSIGN_OR_RETURN(std::string next, ParseColumnRef());
        query.group_by.push_back(std::move(next));
      }
    }
    // Validate the aggregate shape: with aggregates, every plain select
    // item must be a GROUP BY column (and vice versa order is canonical:
    // groups first, then aggregates).
    if (!query.aggregates.empty()) {
      for (const std::string& ref : query.output_columns) {
        bool grouped = false;
        for (const std::string& g : query.group_by) {
          if (EqualsIgnoreCase(g, ref)) grouped = true;
        }
        if (!grouped) {
          return Status::InvalidArgument(
              "select item '" + ref +
              "' must appear in GROUP BY when aggregates are used");
        }
      }
      query.output_columns.clear();  // output = group_by + aggregates
    } else if (!query.group_by.empty()) {
      return Status::InvalidArgument(
          "GROUP BY requires at least one aggregate in the select list");
    }
    if (ConsumeKeyword("order")) {
      TEXTJOIN_RETURN_IF_ERROR(ExpectKeyword("by"));
      TEXTJOIN_ASSIGN_OR_RETURN(std::string first, ParseColumnRef());
      query.order_by.push_back(std::move(first));
      while (ConsumeSymbol(",")) {
        TEXTJOIN_ASSIGN_OR_RETURN(std::string next, ParseColumnRef());
        query.order_by.push_back(std::move(next));
      }
    }
    if (ConsumeKeyword("limit")) {
      if (Peek().kind != SqlTokenKind::kInteger) {
        return Error("expected an integer after LIMIT");
      }
      query.limit = static_cast<size_t>(std::stoull(Advance().text));
    }
    if (Peek().kind != SqlTokenKind::kEnd) {
      if (IsKeyword(Peek(), "or")) {
        return Status::Unimplemented(
            "only conjunctive queries are supported (no OR in WHERE)");
      }
      return Error("unexpected trailing input");
    }
    return query;
  }

 private:
  const SqlToken& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const SqlToken& Advance() { return tokens_[pos_++]; }

  static bool IsKeyword(const SqlToken& tok, const char* kw) {
    return tok.kind == SqlTokenKind::kIdentifier &&
           EqualsIgnoreCase(tok.text, kw);
  }

  bool ConsumeKeyword(const char* kw) {
    if (IsKeyword(Peek(), kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeSymbol(const char* sym) {
    if (Peek().kind == SqlTokenKind::kSymbol && Peek().text == sym) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(Peek().offset) + " (near '" +
                                   Peek().text + "')");
  }

  Status ExpectKeyword(const char* kw) {
    if (!ConsumeKeyword(kw)) {
      return Error(std::string("expected '") + kw + "'");
    }
    return Status::OK();
  }

  /// Parses `ident` or `ident.ident` into a column reference string.
  Result<std::string> ParseColumnRef() {
    if (Peek().kind != SqlTokenKind::kIdentifier) {
      return Error("expected a column reference");
    }
    std::string ref = Advance().text;
    if (ConsumeSymbol(".")) {
      if (Peek().kind != SqlTokenKind::kIdentifier) {
        return Error("expected a column name after '.'");
      }
      ref += "." + Advance().text;
    }
    return ref;
  }

  /// One select item: column ref, or count(*)/count(col)/min(col)/max(col).
  Status ParseSelectItem(FederatedQuery& query) {
    if (Peek().kind == SqlTokenKind::kIdentifier &&
        (IsKeyword(Peek(), "count") || IsKeyword(Peek(), "min") ||
         IsKeyword(Peek(), "max") || IsKeyword(Peek(), "sum") ||
         IsKeyword(Peek(), "avg")) &&
        Peek(1).kind == SqlTokenKind::kSymbol && Peek(1).text == "(") {
      AggregateItem item;
      const std::string fn = ToLower(Advance().text);
      ConsumeSymbol("(");
      if (fn == "count" && ConsumeSymbol("*")) {
        item.kind = AggregateItem::Kind::kCountStar;
      } else {
        TEXTJOIN_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
        item.kind = fn == "count" ? AggregateItem::Kind::kCount
                    : fn == "min" ? AggregateItem::Kind::kMin
                    : fn == "max" ? AggregateItem::Kind::kMax
                    : fn == "sum" ? AggregateItem::Kind::kSum
                                  : AggregateItem::Kind::kAvg;
      }
      if (!ConsumeSymbol(")")) {
        return Error("expected ')' after aggregate argument");
      }
      query.aggregates.push_back(std::move(item));
      return Status::OK();
    }
    TEXTJOIN_ASSIGN_OR_RETURN(std::string ref, ParseColumnRef());
    query.output_columns.push_back(std::move(ref));
    return Status::OK();
  }

  Status ParseSelectList(FederatedQuery& query) {
    if (ConsumeSymbol("*")) return Status::OK();
    TEXTJOIN_RETURN_IF_ERROR(ParseSelectItem(query));
    while (ConsumeSymbol(",")) {
      TEXTJOIN_RETURN_IF_ERROR(ParseSelectItem(query));
    }
    return Status::OK();
  }

  Status ParseFromList(FederatedQuery& query) {
    do {
      if (Peek().kind != SqlTokenKind::kIdentifier) {
        return Error("expected a table name in FROM");
      }
      std::string table = Advance().text;
      std::string alias = table;
      (void)ConsumeKeyword("as");
      if (Peek().kind == SqlTokenKind::kIdentifier &&
          !IsKeyword(Peek(), "where") && !IsKeyword(Peek(), "and") &&
          !IsKeyword(Peek(), "order") && !IsKeyword(Peek(), "limit") &&
          !IsKeyword(Peek(), "group")) {
        // An identifier right after the table is an alias — but only when
        // the next-next token suggests the FROM list continues correctly.
        alias = Advance().text;
      }
      if (!text_table_name_.empty() &&
          EqualsIgnoreCase(table, text_table_name_)) {
        if (query.has_text_relation) {
          return Error("text relation listed twice in FROM");
        }
        query.has_text_relation = true;
        query.text.alias = alias;  // allow aliasing the text relation
        text_.alias = alias;       // IN targets resolve against the alias
      } else {
        query.relations.push_back(RelationRef{table, alias});
      }
    } while (ConsumeSymbol(","));
    return Status::OK();
  }

  /// A primary operand: column ref or literal.
  struct Operand {
    std::optional<std::string> column;
    std::optional<Value> literal;
  };

  Result<Operand> ParseOperand() {
    Operand op;
    switch (Peek().kind) {
      case SqlTokenKind::kIdentifier: {
        TEXTJOIN_ASSIGN_OR_RETURN(std::string ref, ParseColumnRef());
        op.column = std::move(ref);
        return op;
      }
      case SqlTokenKind::kString:
        op.literal = Value::Str(Advance().text);
        return op;
      case SqlTokenKind::kInteger:
        op.literal = Value::Int(std::stoll(Advance().text));
        return op;
      case SqlTokenKind::kFloat:
        op.literal = Value::Real(std::stod(Advance().text));
        return op;
      default:
        return Error("expected a column or literal");
    }
  }

  ExprPtr OperandExpr(const Operand& op) const {
    if (op.column.has_value()) return Col(*op.column);
    return Lit(*op.literal);
  }

  /// True if `ref` is a column of the text relation ("mercury.title").
  bool IsTextField(const std::string& ref, std::string* field) const {
    const size_t dot = ref.find('.');
    if (dot == std::string::npos) return false;
    if (!EqualsIgnoreCase(ref.substr(0, dot),
                          text_.alias.empty() ? "" : text_.alias)) {
      return false;
    }
    *field = ref.substr(dot + 1);
    return true;
  }

  Status ParseConjunct(FederatedQuery& query) {
    TEXTJOIN_ASSIGN_OR_RETURN(Operand lhs, ParseOperand());

    if (ConsumeKeyword("in")) {
      // 'term' IN text.field (selection) or column IN text.field (join).
      TEXTJOIN_ASSIGN_OR_RETURN(std::string target, ParseColumnRef());
      std::string field;
      if (!query.has_text_relation || !IsTextField(target, &field)) {
        return Status::InvalidArgument(
            "IN predicate target '" + target +
            "' is not a field of the text relation '" + text_.alias + "'");
      }
      if (!query.text.HasField(field)) {
        return Status::NotFound("text relation has no field '" + field + "'");
      }
      if (lhs.literal.has_value()) {
        if (lhs.literal->type() != ValueType::kString) {
          return Status::InvalidArgument(
              "text selection term must be a string");
        }
        query.text_selections.push_back(
            TextSelection{lhs.literal->AsString(), field});
      } else {
        query.text_joins.push_back(TextJoinPredicate{*lhs.column, field});
      }
      return Status::OK();
    }

    if (ConsumeKeyword("like")) {
      if (Peek().kind != SqlTokenKind::kString) {
        return Error("expected a pattern string after LIKE");
      }
      if (!lhs.column.has_value()) {
        return Error("LIKE requires a column on the left");
      }
      query.relational_predicates.push_back(
          Like(Col(*lhs.column), Advance().text));
      return Status::OK();
    }

    // Comparison operator.
    CompareOp op;
    if (ConsumeSymbol("=")) {
      op = CompareOp::kEq;
    } else if (ConsumeSymbol("!=")) {
      op = CompareOp::kNe;
    } else if (ConsumeSymbol("<=")) {
      op = CompareOp::kLe;
    } else if (ConsumeSymbol(">=")) {
      op = CompareOp::kGe;
    } else if (ConsumeSymbol("<")) {
      op = CompareOp::kLt;
    } else if (ConsumeSymbol(">")) {
      op = CompareOp::kGt;
    } else {
      return Error("expected a comparison operator, IN, or LIKE");
    }
    TEXTJOIN_ASSIGN_OR_RETURN(Operand rhs, ParseOperand());
    query.relational_predicates.push_back(
        Cmp(op, OperandExpr(lhs), OperandExpr(rhs)));
    return Status::OK();
  }

  std::vector<SqlToken> tokens_;
  size_t pos_ = 0;
  TextRelationDecl text_;
  std::string text_table_name_;  ///< The declared name (FROM matches this).
};

}  // namespace

Result<FederatedQuery> ParseQuery(const std::string& sql,
                                  const TextRelationDecl& text) {
  TEXTJOIN_ASSIGN_OR_RETURN(std::vector<SqlToken> tokens, LexSql(sql));
  return Parser(std::move(tokens), text).Parse();
}

}  // namespace textjoin
