#ifndef TEXTJOIN_SQL_PARSER_H_
#define TEXTJOIN_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "core/federated_query.h"

/// \file
/// Parser for the paper's SQL-like conjunctive query dialect (Section 2.2):
///
///   SELECT * | col [, col ...]
///   FROM table [alias] [, table [alias] ...]
///   WHERE conjunct [AND conjunct ...]
///
///   conjunct := operand (= | != | < | <= | > | >=) operand
///             | column LIKE 'pattern'
///             | 'term'  IN text.field     -- text selection
///             | column  IN text.field     -- text join (foreign join)
///   operand  := [rel.]column | 'string' | integer | float
///
/// One FROM entry may name the external text source (matched against the
/// TextRelationDecl's alias); `IN` predicates against its fields become
/// text selections/joins, everything else stays relational. Queries are
/// conjunctive only — OR in the WHERE clause is rejected, matching the
/// paper's query class.

namespace textjoin {

/// Parses `sql` into a FederatedQuery. `text` declares the external text
/// relation (alias + fields); pass an empty alias for pure-relational
/// parsing. Keywords and identifiers are case-insensitive.
Result<FederatedQuery> ParseQuery(const std::string& sql,
                                  const TextRelationDecl& text);

}  // namespace textjoin

#endif  // TEXTJOIN_SQL_PARSER_H_
