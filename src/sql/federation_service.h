#ifndef TEXTJOIN_SQL_FEDERATION_SERVICE_H_
#define TEXTJOIN_SQL_FEDERATION_SERVICE_H_

#include <string>

#include "common/random.h"
#include "connector/remote_text_source.h"
#include "core/enumerator.h"
#include "core/executor.h"
#include "core/statistics.h"

/// \file
/// The one-stop facade over the whole pipeline: SQL text in, rows out.
/// Wires together the parser, statistics acquisition (sampling per paper
/// Section 4.2, or oracle mode for experiments), the PrL enumerator, the
/// plan executor, and the access meter.

namespace textjoin {

/// A federation of one relational catalog and one external text source.
class FederationService {
 public:
  struct Options {
    /// true: compute exact statistics engine-side (free, experiment mode).
    /// false: sample the text source per Section 4.2; sampling charges go
    /// to stats_meter() and are amortized across queries.
    bool oracle_stats = true;
    size_t sample_size = 50;        ///< Values probed per predicate.
    uint64_t sampling_seed = 42;
    EnumeratorOptions enumerator;   ///< Plan-space knobs.
  };

  /// All pointers must outlive the service. `text` declares how the
  /// engine appears as a relation (alias + fields).
  FederationService(const Catalog* catalog, TextEngine* engine,
                    TextRelationDecl text, Options options)
      : catalog_(catalog),
        engine_(engine),
        text_(std::move(text)),
        options_(options),
        source_(engine),
        rng_(options.sampling_seed) {}

  /// Convenience constructor with default options.
  FederationService(const Catalog* catalog, TextEngine* engine,
                    TextRelationDecl text)
      : FederationService(catalog, engine, std::move(text), Options{}) {}

  FederationService(const FederationService&) = delete;
  FederationService& operator=(const FederationService&) = delete;

  /// Parses, optimizes, and executes `sql`. Statistics for predicates not
  /// yet known are acquired on first use and cached across queries.
  Result<ExecutionResult> Query(const std::string& sql);

  /// Parses and optimizes `sql`, returning the EXPLAIN rendering of the
  /// chosen plan (no execution, no meter charges beyond statistics).
  Result<std::string> Explain(const std::string& sql);

  /// Cumulative execution charges (per-query deltas are the caller's job).
  const AccessMeter& meter() const { return source_.meter(); }
  void ResetMeter() { source_.ResetMeter(); }

  /// Charges incurred acquiring statistics (sampling mode only).
  const AccessMeter& stats_meter() const { return stats_meter_; }

  /// The statistics cache (exposed for inspection/preloading).
  StatsRegistry& stats() { return registry_; }

 private:
  /// Ensures the registry covers every predicate of `query`.
  Status EnsureStatistics(const FederatedQuery& query);

  Result<PlanNodePtr> Plan(const FederatedQuery& query);

  const Catalog* catalog_;
  TextEngine* engine_;
  TextRelationDecl text_;
  Options options_;
  RemoteTextSource source_;
  StatsRegistry registry_;
  AccessMeter stats_meter_;
  Rng rng_;
};

}  // namespace textjoin

#endif  // TEXTJOIN_SQL_FEDERATION_SERVICE_H_
