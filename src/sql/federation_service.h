#ifndef TEXTJOIN_SQL_FEDERATION_SERVICE_H_
#define TEXTJOIN_SQL_FEDERATION_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "connector/overload.h"
#include "connector/remote_text_source.h"
#include "connector/resilience.h"
#include "connector/sharding.h"
#include "connector/text_cache.h"
#include "core/admission.h"
#include "core/enumerator.h"
#include "core/executor.h"
#include "core/statistics.h"

/// \file
/// The one-stop facade over the whole pipeline: SQL text in, rows out.
/// Wires together the parser, statistics acquisition (sampling per paper
/// Section 4.2, or oracle mode for experiments), the PrL enumerator, the
/// plan executor, and the access meter — over ONE text backend or a
/// sharded, replicated topology of them (connector/sharding.h).

namespace textjoin {

/// Everything one Run() call produced, as a value: the materialized rows,
/// the text-source charges attributable to THIS call (not a cumulative
/// counter the caller must diff), the chosen plan, and the per-node
/// execution profile. Outcomes are self-contained — two concurrent calls
/// never see each other's charges.
struct QueryOutcome {
  ExecutionResult rows;

  /// Text-source charges of this execution only — the LOGICAL charges
  /// under a sharded topology, byte-identical to the single-backend meter
  /// for the same rows. Sampling charges (when oracle_stats is false) are
  /// excluded; they live in stats_meter().
  AccessMeter meter_delta;

  /// EXPLAIN rendering of the plan that was executed.
  std::string chosen_plan;

  /// Per-node actuals (rows + meter deltas), keyed by nodes of `plan`.
  /// Pipeline-backed nodes (foreign join, probe) additionally carry a
  /// per-stage breakdown (NodeProfile::stages) which ExplainAnalyze
  /// renders as indented stage lines under the node.
  ExecutionProfile profile;

  /// The executed plan; owning it here keeps `profile`'s keys valid for
  /// as long as the outcome lives (e.g. for ExplainAnalyze rendering).
  PlanNodePtr plan;

  /// The honest account of this execution's degradation: retries and
  /// breaker activity absorbed by the resilience layer, plus whatever a
  /// non-fail-fast failure mode skipped. `degradation.complete` is the
  /// headline — when true, `rows` is exactly the fault-free answer.
  DegradationReport degradation;

  /// This query's cross-query cache traffic (all zero when caching is off
  /// or the cache was cold for every operation). `meter_delta` counts
  /// upstream calls actually made; the operations the cache absorbed are
  /// here, reported separately.
  CacheActivity cache;

  /// What the overload layer did for this query: hedge races and their
  /// diverted waste charges (NOT in meter_delta — losers never charge the
  /// main meter), limiter queueing, deadline-shed operations, and the
  /// admission wait. All zero when the layer is off or idle.
  OverloadActivity overload;

  /// Per-shard-replica PHYSICAL attribution (traffic each replica actually
  /// served, failovers, per-replica retries), plus routing counters.
  /// Populated only for multi-shard topologies; rendered as "| shard"
  /// lines by ExplainAnalyze.
  ShardActivity shards;
};

/// A federation of one relational catalog and an external text corpus —
/// either a single engine or a BackendTopology of N shards x R replicas
/// routed by a ShardedTextSource.
///
/// Run() is safe to call from multiple threads concurrently: statistics
/// acquisition and planning are serialized internally, and each execution
/// charges a private per-call meter before folding into the cumulative one.
class FederationService {
 public:
  struct Options {
    /// How the engine appears as a relation (alias + fields).
    TextRelationDecl text;

    /// Where the corpus lives. Empty (the default) means a single backend:
    /// the engine passed to the constructor, as a topology of one shard,
    /// one replica — byte-identical to the pre-topology behavior. A
    /// multi-shard topology scatter-gathers searches and routes fetches by
    /// docid hash (see connector/sharding.h and workload/sharded_corpus.h
    /// for building one).
    BackendTopology topology;

    /// The per-query decorator chain, one composable spec (presence of an
    /// optional = layer engaged): `chain.cache` is the logical, outermost
    /// layer above the router; `chain.hedging` is per shard (duplicates
    /// race ACROSS replicas); `chain.limiter` and `chain.resilience` (with
    /// its nested breaker) are per replica, so one sick replica fails over
    /// without poisoning the rest. Controllers (breakers, limiters, hedge
    /// state) are service-wide and persist across queries.
    ChainSpec chain;

    /// Service admission queue (presence = enabled): bounded queueing for
    /// an execution slot, priority-ordered, shedding queries whose
    /// remaining deadline cannot cover their estimated cost. A query gate,
    /// not a chain layer — hence not part of `chain`.
    std::optional<AdmissionOptions> admission_control;

    /// THE query-deadline clock: deadlines are computed and checked on it
    /// everywhere (admission shedding, executor-level shedding). Null =
    /// steady_clock. Inject for deterministic deadline tests.
    SteadyClockFn deadline_clock;

    /// Worker threads for multi-shard search scatter (the caller
    /// participates). 0 = one per shard beyond the first.
    int scatter_parallelism = 0;

    /// true: compute exact statistics engine-side (free, experiment mode).
    /// false: sample the text source per Section 4.2; sampling charges go
    /// to stats_meter() and are amortized across queries.
    bool oracle_stats = true;
    size_t sample_size = 50;        ///< Values probed per predicate.
    uint64_t sampling_seed = 42;

    /// Number of concurrent text-source operations per query; 1 = serial.
    /// Parallelism never changes results or meter totals, only wall-clock
    /// time (see DESIGN.md, "Concurrency model").
    int parallelism = 1;

    EnumeratorOptions enumerator;   ///< Plan-space knobs.

    /// What execution does when an operation fails even after the
    /// resilience layer gave up (see FailureMode). Fail-fast reproduces
    /// the historical behavior; best-effort returns partial results with
    /// an honest QueryOutcome::degradation report. Under a sharded
    /// topology, best-effort additionally lets a broadcast search drop a
    /// whole shard whose every replica failed transiently.
    FailureMode failure_mode = FailureMode::kFailFast;

    /// Test/chaos hook: wraps each REPLICA's execution source (after the
    /// meter and the topology's own per-replica decorator, before
    /// resilience). Returning null leaves the replica unwrapped. The
    /// returned decorators live for the duration of the Run() call.
    std::function<std::unique_ptr<TextSource>(TextSource*)>
        execution_source_decorator;

    /// A cache to share with other services/sessions (the multi-session
    /// setting: one cache, many federations over the same corpus). When
    /// set, it wins over `chain.cache` (which would build a private one).
    std::shared_ptr<TextCache> shared_cache;

    /// Default per-query deadline (0 = none) and priority, overridable per
    /// Run() call via RunOptions. The deadline bounds the whole query:
    /// admission sheds it when it cannot be met, and execution sheds the
    /// remaining source operations once it passes (on `deadline_clock`).
    std::chrono::microseconds default_deadline{0};
    int default_priority = 0;

    // --- Deprecated aliases (one release): the flat enable_X + XOptions
    // pairs that ChainSpec replaced. Normalization folds each enabled pair
    // into the corresponding `chain` optional (or `admission_control` /
    // `deadline_clock`) unless the new field is already set, which wins.
    bool enable_resilience = false;     ///< Deprecated: set chain.resilience.
    ResilienceOptions resilience;       ///< Deprecated: set chain.resilience.
    bool enable_cache = false;          ///< Deprecated: set chain.cache.
    CacheOptions cache;                 ///< Deprecated: set chain.cache.
    bool enable_adaptive_limit = false; ///< Deprecated: set chain.limiter.
    AdaptiveLimiterOptions adaptive_limit;  ///< Deprecated: chain.limiter.
    bool enable_hedging = false;        ///< Deprecated: set chain.hedging.
    HedgeOptions hedging;               ///< Deprecated: set chain.hedging.
    bool enable_admission = false;      ///< Deprecated: set admission_control.
    AdmissionOptions admission;         ///< Deprecated: set admission_control.
  };

  /// Per-call overrides of the service-wide defaults.
  struct RunOptions {
    std::optional<std::chrono::microseconds> deadline;
    std::optional<int> priority;
    /// Client abort handle: make one with CancelToken::Make(), pass it
    /// here, and Cancel() it from any thread to abort the query
    /// cooperatively — queued admission waits shed immediately, pending
    /// pipeline units drain without running, in-flight source waits
    /// (retry backoff, limiter queues, injected latency) wake, and the
    /// query returns kCancelled. A null (default) token never fires.
    /// Deadline expiry and service drain arm the SAME per-query token
    /// internally, so all three converge on one cancellation path.
    CancelToken cancel;
  };

  /// A query started with Launch(): cancel it, await its outcome. Move-only;
  /// destroying an un-awaited handle blocks until the query finished
  /// (cancel first for a fast exit).
  class QueryHandle {
   public:
    QueryHandle() = default;
    QueryHandle(QueryHandle&&) = default;
    QueryHandle& operator=(QueryHandle&&) = default;
    ~QueryHandle();

    /// Fires the query's token with kClient. Idempotent; safe from any
    /// thread, including after the query finished.
    void Cancel(std::string reason = "client abort");

    /// Blocks until the query finished and returns its outcome (or its
    /// error — kCancelled after Cancel(), kUnavailable when refused by a
    /// draining service). Valid once per handle.
    Result<QueryOutcome> Await();

   private:
    friend class FederationService;
    struct Shared;
    CancelToken token_;
    CancelToken::Registration link_;
    std::shared_ptr<Shared> shared_;
  };

  /// What Drain() did to the queries that were in flight when it started.
  struct DrainReport {
    size_t in_flight = 0;  ///< Queries active when the drain began.
    size_t finished = 0;   ///< Of those, completed inside the budget.
    size_t cancelled = 0;  ///< Stragglers hard-cancelled at the budget.
  };

  /// All pointers must outlive the service. `engine` may be null when
  /// `options.topology` is set (it is ignored then); with an empty
  /// topology it becomes the single backend.
  FederationService(const Catalog* catalog, const SearchableCorpus* engine,
                    Options options)
      : catalog_(catalog),
        options_(Normalize(std::move(options))),
        rng_(options_.sampling_seed) {
    TEXTJOIN_CHECK(!options_.topology.empty() || engine != nullptr,
                   "FederationService needs an engine or a topology");
    BackendTopology topology = options_.topology.empty()
                                   ? BackendTopology::Single(engine)
                                   : options_.topology;
    ShardedBackendOptions backend_options;
    backend_options.chain = options_.chain;
    backend_options.scatter_parallelism = options_.scatter_parallelism;
    backend_ = std::make_unique<ShardedBackend>(std::move(topology),
                                                std::move(backend_options));
    stats_source_ = backend_->MakeBareSource();
    if (options_.parallelism > 1) {
      pool_ = std::make_unique<ThreadPool>(options_.parallelism - 1);
    }
    if (options_.shared_cache != nullptr) {
      cache_ = options_.shared_cache;
    } else if (options_.chain.cache.has_value()) {
      cache_ = std::make_shared<TextCache>(*options_.chain.cache);
    }
    if (options_.admission_control.has_value()) {
      AdmissionOptions admission = *options_.admission_control;
      if (!admission.clock && options_.deadline_clock) {
        admission.clock = options_.deadline_clock;
      }
      admission_ = std::make_unique<AdmissionController>(admission);
    }
  }

  FederationService(const FederationService&) = delete;
  FederationService& operator=(const FederationService&) = delete;

  /// Parses, optimizes, and executes `sql`, returning a self-contained
  /// QueryOutcome. Statistics for predicates not yet known are acquired on
  /// first use and cached across queries.
  Result<QueryOutcome> Run(const std::string& sql);

  /// Run() with per-call deadline/priority overrides. A query shed by
  /// admission control returns an error outcome: kUnavailable when the
  /// admission queue was full, kDeadlineExceeded when its deadline had
  /// passed (or could not cover the plan's estimated cost). A cancelled
  /// query (run.cancel, deadline-armed token, or service drain) returns
  /// kCancelled without publishing a torn row set.
  Result<QueryOutcome> Run(const std::string& sql, const RunOptions& run);

  /// Starts `sql` on a dedicated thread and returns immediately with a
  /// handle that can Cancel() it mid-flight and Await() its outcome — the
  /// asynchronous face of Run() (which stays synchronous).
  QueryHandle Launch(const std::string& sql, RunOptions run = {});

  /// Graceful drain: stop admitting new queries (Run/Launch return
  /// kUnavailable from now on), give in-flight queries `budget` of real
  /// time to finish, then hard-cancel the stragglers (kShutdown through
  /// each query's token) and wait for them to unwind. Idempotent; safe
  /// to call concurrently with Run (a second drain observes whatever the
  /// first left). The service stays usable for introspection (meters,
  /// stats) afterwards — only query admission is closed.
  DrainReport Drain(std::chrono::microseconds budget);

  /// Drain with a zero budget: refuse new queries and hard-cancel
  /// everything in flight immediately.
  DrainReport Shutdown() { return Drain(std::chrono::microseconds{0}); }

  /// True once Drain()/Shutdown() began: new queries are being refused.
  bool draining() const {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    return draining_;
  }

  /// Parses and optimizes `sql`, returning the EXPLAIN rendering of the
  /// chosen plan (no execution, no meter charges beyond statistics).
  Result<std::string> Explain(const std::string& sql);

  /// Cumulative execution charges across every Run() so far.
  AccessMeter meter() const { return cumulative_.Snapshot(); }
  void ResetMeter() { cumulative_.Reset(); }

  /// Charges incurred acquiring statistics (sampling mode only).
  AccessMeter stats_meter() const { return stats_source_->meter(); }

  /// The backend: topology plus the service-wide per-(shard, replica)
  /// breakers / limiters and per-shard hedge controllers.
  ShardedBackend* backend() const { return backend_.get(); }

  /// Single-backend conveniences: the (0, 0) replica's controllers (the
  /// only ones in a topology of one). Null when the layer is off.
  CircuitBreaker* breaker() const { return backend_->breaker(0, 0); }
  AdaptiveLimiter* limiter() const { return backend_->limiter(0, 0); }
  HedgeController* hedge() const { return backend_->hedge(0); }
  AdmissionController* admission() const { return admission_.get(); }

  /// The cross-query cache this service consults (shared or private);
  /// null when caching is off. Stats() aggregates every session using it.
  TextCache* cache() const { return cache_.get(); }

  /// Drops every cache entry and advances the epoch — for corpus changes
  /// the automatic document-count watch cannot see (in-place edits).
  /// No-op when caching is off.
  void InvalidateCache() {
    if (cache_ != nullptr) cache_->AdvanceEpoch();
  }

  /// The statistics cache (exposed for inspection/preloading). Not
  /// synchronized — do not touch while Run() is in flight elsewhere.
  StatsRegistry& stats() { return registry_; }

 private:
  /// Folds the deprecated enable_X aliases into ChainSpec form (new-style
  /// fields win when both are set).
  static Options Normalize(Options options) {
    if (!options.chain.resilience.has_value() && options.enable_resilience) {
      options.chain.resilience = options.resilience;
    }
    if (!options.chain.cache.has_value() && options.enable_cache) {
      options.chain.cache = options.cache;
    }
    if (!options.chain.limiter.has_value() && options.enable_adaptive_limit) {
      options.chain.limiter = options.adaptive_limit;
    }
    if (!options.chain.hedging.has_value() && options.enable_hedging) {
      options.chain.hedging = options.hedging;
    }
    if (!options.admission_control.has_value() && options.enable_admission) {
      options.admission_control = options.admission;
    }
    if (!options.deadline_clock) {
      if (options.admission_control.has_value() &&
          options.admission_control->clock) {
        options.deadline_clock = options.admission_control->clock;
      } else if (options.admission.clock) {
        options.deadline_clock = options.admission.clock;
      }
    }
    return options;
  }

  /// Ensures the registry covers every predicate of `query`. Caller holds
  /// stats_mu_.
  Status EnsureStatistics(const FederatedQuery& query);

  /// Statistics + enumeration under stats_mu_.
  Result<PlanNodePtr> Plan(const FederatedQuery& query);

  const Catalog* catalog_;
  Options options_;

  /// The topology plus shared per-replica controllers; every Run() mints
  /// its router from this.
  std::unique_ptr<ShardedBackend> backend_;

  /// Serializes statistics acquisition and planning (registry_, rng_).
  std::mutex stats_mu_;
  /// Bare (chain-less) router; its own meter IS the stats meter.
  std::unique_ptr<ShardedTextSource> stats_source_;
  StatsRegistry registry_;
  Rng rng_;

  /// Folded per-call deltas; commutative, so concurrent Run()s agree.
  AtomicAccessMeter cumulative_;

  /// Shared helper threads for parallel execution (null when serial).
  std::unique_ptr<ThreadPool> pool_;

  /// Admission gate; null when admission_control is absent.
  std::unique_ptr<AdmissionController> admission_;

  /// Query lifecycle: the drain gate plus the registry of in-flight query
  /// tokens (id -> token), so Drain() can hard-cancel stragglers. Guarded
  /// by lifecycle_mu_; lifecycle_cv_ signals every unregister.
  mutable std::mutex lifecycle_mu_;
  std::condition_variable lifecycle_cv_;
  bool draining_ = false;
  uint64_t next_query_id_ = 0;
  std::map<uint64_t, CancelToken> active_;

  /// The cross-query cache (private or shared per Options). Null when off.
  std::shared_ptr<TextCache> cache_;

  /// Corpus-change watch: the TOTAL document count across every shard
  /// observed by the last Run() — aggregated, so a single-shard corpus
  /// swap still bumps the epoch. SIZE_MAX until first observed (no
  /// spurious invalidation on startup).
  std::atomic<size_t> last_corpus_size_{static_cast<size_t>(-1)};
};

}  // namespace textjoin

#endif  // TEXTJOIN_SQL_FEDERATION_SERVICE_H_
