#ifndef TEXTJOIN_SQL_FEDERATION_SERVICE_H_
#define TEXTJOIN_SQL_FEDERATION_SERVICE_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "common/random.h"
#include "common/thread_pool.h"
#include "connector/overload.h"
#include "connector/remote_text_source.h"
#include "connector/resilience.h"
#include "connector/text_cache.h"
#include "core/admission.h"
#include "core/enumerator.h"
#include "core/executor.h"
#include "core/statistics.h"

/// \file
/// The one-stop facade over the whole pipeline: SQL text in, rows out.
/// Wires together the parser, statistics acquisition (sampling per paper
/// Section 4.2, or oracle mode for experiments), the PrL enumerator, the
/// plan executor, and the access meter.

namespace textjoin {

/// Everything one Run() call produced, as a value: the materialized rows,
/// the text-source charges attributable to THIS call (not a cumulative
/// counter the caller must diff), the chosen plan, and the per-node
/// execution profile. Outcomes are self-contained — two concurrent calls
/// never see each other's charges.
struct QueryOutcome {
  ExecutionResult rows;

  /// Text-source charges of this execution only. Sampling charges (when
  /// oracle_stats is false) are excluded; they live in stats_meter().
  AccessMeter meter_delta;

  /// EXPLAIN rendering of the plan that was executed.
  std::string chosen_plan;

  /// Per-node actuals (rows + meter deltas), keyed by nodes of `plan`.
  /// Pipeline-backed nodes (foreign join, probe) additionally carry a
  /// per-stage breakdown (NodeProfile::stages) which ExplainAnalyze
  /// renders as indented stage lines under the node.
  ExecutionProfile profile;

  /// The executed plan; owning it here keeps `profile`'s keys valid for
  /// as long as the outcome lives (e.g. for ExplainAnalyze rendering).
  PlanNodePtr plan;

  /// The honest account of this execution's degradation: retries and
  /// breaker activity absorbed by the resilience layer, plus whatever a
  /// non-fail-fast failure mode skipped. `degradation.complete` is the
  /// headline — when true, `rows` is exactly the fault-free answer.
  DegradationReport degradation;

  /// This query's cross-query cache traffic (all zero when caching is off
  /// or the cache was cold for every operation). `meter_delta` counts
  /// upstream calls actually made; the operations the cache absorbed are
  /// here, reported separately.
  CacheActivity cache;

  /// What the overload layer did for this query: hedge races and their
  /// diverted waste charges (NOT in meter_delta — losers never charge the
  /// main meter), limiter queueing, deadline-shed operations, and the
  /// admission wait. All zero when the layer is off or idle.
  OverloadActivity overload;
};

/// A federation of one relational catalog and one external text source.
///
/// Run() is safe to call from multiple threads concurrently: statistics
/// acquisition and planning are serialized internally, and each execution
/// charges a private per-call meter before folding into the cumulative one.
class FederationService {
 public:
  struct Options {
    /// How the engine appears as a relation (alias + fields).
    TextRelationDecl text;

    /// true: compute exact statistics engine-side (free, experiment mode).
    /// false: sample the text source per Section 4.2; sampling charges go
    /// to stats_meter() and are amortized across queries.
    bool oracle_stats = true;
    size_t sample_size = 50;        ///< Values probed per predicate.
    uint64_t sampling_seed = 42;

    /// Number of concurrent text-source operations per query; 1 = serial.
    /// Parallelism never changes results or meter totals, only wall-clock
    /// time (see DESIGN.md, "Concurrency model").
    int parallelism = 1;

    EnumeratorOptions enumerator;   ///< Plan-space knobs.

    /// Wraps each query's execution source in a ResilientTextSource
    /// (retries, deadlines, circuit breaker — see `resilience`). The
    /// breaker is owned by the service and shared across queries, so a
    /// struggling remote fails fast for every caller, not once per query.
    bool enable_resilience = false;
    ResilienceOptions resilience;

    /// What execution does when an operation fails even after the
    /// resilience layer gave up (see FailureMode). Fail-fast reproduces
    /// the historical behavior; best-effort returns partial results with
    /// an honest QueryOutcome::degradation report.
    FailureMode failure_mode = FailureMode::kFailFast;

    /// Test/chaos hook: wraps the per-query execution source (after the
    /// meter, before resilience). Used to inject faults between the
    /// resilience layer and the engine; returning null leaves the source
    /// unwrapped. The returned decorator lives for the duration of the
    /// Run() call.
    std::function<std::unique_ptr<TextSource>(TextSource*)>
        execution_source_decorator;

    /// Cross-query caching (connector/text_cache.h): search results,
    /// long-form documents, and session-scope probe outcomes, LRU under
    /// `cache.byte_budget` with cost-model admission and in-flight
    /// coalescing. The cache layer goes OUTERMOST — above resilience —
    /// so hits bypass retries, the breaker and the meter; meter_delta
    /// keeps counting upstream calls actually made, and the absorbed
    /// operations appear in QueryOutcome::cache. The service watches the
    /// corpus document count and advances the cache epoch (dropping every
    /// entry) when it changes; call InvalidateCache() for corpus changes
    /// that keep the count.
    bool enable_cache = false;
    CacheOptions cache;

    /// A cache to share with other services/sessions (the multi-session
    /// setting: one cache, many federations over the same corpus). When
    /// set, it wins over `enable_cache`/`cache` (which would build a
    /// private one).
    std::shared_ptr<TextCache> shared_cache;

    // --- Overload protection (connector/overload.h, core/admission.h).
    // The per-query decorator chain becomes, outermost first:
    //   cache -> hedging -> limiter -> resilience -> [chaos] -> meter.
    // Interplay: cache hits/coalesced waiters never reach the hedging
    // layer (only a coalescing LEADER's upstream call may hedge); a hedge
    // duplicate charges the per-query waste meter instead of the main
    // meter and never records breaker outcomes, so meter totals and
    // breaker behavior stay byte-identical to unhedged execution; the
    // limiter sits INSIDE hedging so duplicates take a permit too, and the
    // hedging layer consults it to suppress duplicates when there is no
    // spare capacity.

    /// Shared AIMD concurrency limiter over the remote: operations beyond
    /// the learned limit queue at the connector boundary (stage-scheduler
    /// units block instead of piling onto a struggling source).
    bool enable_adaptive_limit = false;
    AdaptiveLimiterOptions adaptive_limit;

    /// Tail-latency hedging for Search/Fetch (idempotent reads only —
    /// which is all a TextSource has).
    bool enable_hedging = false;
    HedgeOptions hedging;

    /// Service admission queue: bounded queueing for an execution slot,
    /// priority-ordered, shedding queries whose remaining deadline cannot
    /// cover their estimated cost (the plan's CostModel estimate).
    bool enable_admission = false;
    AdmissionOptions admission;

    /// Default per-query deadline (0 = none) and priority, overridable per
    /// Run() call via RunOptions. The deadline bounds the whole query:
    /// admission sheds it when it cannot be met, and execution sheds the
    /// remaining source operations once it passes. `admission.clock` is
    /// THE query-deadline clock (deadlines are computed and checked on it
    /// everywhere, including executor-level shedding) — inject it there
    /// for deterministic deadline tests.
    std::chrono::microseconds default_deadline{0};
    int default_priority = 0;
  };

  /// Per-call overrides of the service-wide defaults.
  struct RunOptions {
    std::optional<std::chrono::microseconds> deadline;
    std::optional<int> priority;
  };

  /// All pointers must outlive the service.
  FederationService(const Catalog* catalog, TextEngine* engine,
                    Options options)
      : catalog_(catalog),
        engine_(engine),
        options_(std::move(options)),
        stats_source_(engine),
        rng_(options_.sampling_seed) {
    if (options_.parallelism > 1) {
      pool_ = std::make_unique<ThreadPool>(options_.parallelism - 1);
    }
    if (options_.enable_resilience && options_.resilience.enable_breaker) {
      breaker_ = std::make_unique<CircuitBreaker>(options_.resilience.breaker,
                                                  options_.resilience.clock);
    }
    if (options_.shared_cache != nullptr) {
      cache_ = options_.shared_cache;
    } else if (options_.enable_cache) {
      cache_ = std::make_shared<TextCache>(options_.cache);
    }
    if (options_.enable_adaptive_limit) {
      limiter_ = std::make_unique<AdaptiveLimiter>(options_.adaptive_limit);
    }
    if (options_.enable_hedging) {
      hedge_ = std::make_unique<HedgeController>(options_.hedging);
    }
    if (options_.enable_admission) {
      admission_ = std::make_unique<AdmissionController>(options_.admission);
    }
  }

  /// Transitional constructors predating Options::text; prefer passing the
  /// declaration inside Options.
  FederationService(const Catalog* catalog, TextEngine* engine,
                    TextRelationDecl text, Options options)
      : FederationService(catalog, engine,
                          MergeText(std::move(options), std::move(text))) {}
  FederationService(const Catalog* catalog, TextEngine* engine,
                    TextRelationDecl text)
      : FederationService(catalog, engine, std::move(text), Options{}) {}

  FederationService(const FederationService&) = delete;
  FederationService& operator=(const FederationService&) = delete;

  /// Parses, optimizes, and executes `sql`, returning a self-contained
  /// QueryOutcome. Statistics for predicates not yet known are acquired on
  /// first use and cached across queries.
  Result<QueryOutcome> Run(const std::string& sql);

  /// Run() with per-call deadline/priority overrides. A query shed by
  /// admission control returns an error outcome: kUnavailable when the
  /// admission queue was full, kDeadlineExceeded when its deadline had
  /// passed (or could not cover the plan's estimated cost).
  Result<QueryOutcome> Run(const std::string& sql, const RunOptions& run);

  /// Deprecated shim over Run() for callers that only want rows; new code
  /// should call Run() and use the outcome's per-call meter_delta instead
  /// of diffing the cumulative meter().
  Result<ExecutionResult> Query(const std::string& sql);

  /// Parses and optimizes `sql`, returning the EXPLAIN rendering of the
  /// chosen plan (no execution, no meter charges beyond statistics).
  Result<std::string> Explain(const std::string& sql);

  /// Cumulative execution charges across every Run()/Query() so far.
  AccessMeter meter() const { return cumulative_.Snapshot(); }
  void ResetMeter() { cumulative_.Reset(); }

  /// Charges incurred acquiring statistics (sampling mode only).
  AccessMeter stats_meter() const { return stats_source_.meter(); }

  /// The service-wide circuit breaker shared by every query's resilient
  /// source; null unless resilience (with breaker) is enabled.
  CircuitBreaker* breaker() const { return breaker_.get(); }

  /// The service-wide overload controllers; null when the respective
  /// feature is off.
  AdaptiveLimiter* limiter() const { return limiter_.get(); }
  HedgeController* hedge() const { return hedge_.get(); }
  AdmissionController* admission() const { return admission_.get(); }

  /// The cross-query cache this service consults (shared or private);
  /// null when caching is off. Stats() aggregates every session using it.
  TextCache* cache() const { return cache_.get(); }

  /// Drops every cache entry and advances the epoch — for corpus changes
  /// the automatic document-count watch cannot see (in-place edits).
  /// No-op when caching is off.
  void InvalidateCache() {
    if (cache_ != nullptr) cache_->AdvanceEpoch();
  }

  /// The statistics cache (exposed for inspection/preloading). Not
  /// synchronized — do not touch while Run() is in flight elsewhere.
  StatsRegistry& stats() { return registry_; }

 private:
  static Options MergeText(Options options, TextRelationDecl text) {
    options.text = std::move(text);
    return options;
  }

  /// Ensures the registry covers every predicate of `query`. Caller holds
  /// stats_mu_.
  Status EnsureStatistics(const FederatedQuery& query);

  /// Statistics + enumeration under stats_mu_.
  Result<PlanNodePtr> Plan(const FederatedQuery& query);

  const Catalog* catalog_;
  TextEngine* engine_;
  Options options_;

  /// Serializes statistics acquisition and planning (registry_, rng_).
  std::mutex stats_mu_;
  RemoteTextSource stats_source_;  ///< Its own meter IS the stats meter.
  StatsRegistry registry_;
  Rng rng_;

  /// Folded per-call deltas; commutative, so concurrent Run()s agree.
  AtomicAccessMeter cumulative_;

  /// Shared helper threads for parallel execution (null when serial).
  std::unique_ptr<ThreadPool> pool_;

  /// One breaker for the remote, shared across per-query resilient
  /// sources (thread-safe). Null when resilience is off.
  std::unique_ptr<CircuitBreaker> breaker_;

  /// Service-wide overload controllers, shared across queries like the
  /// breaker. Null when the respective feature is off.
  std::unique_ptr<AdaptiveLimiter> limiter_;
  std::unique_ptr<HedgeController> hedge_;
  std::unique_ptr<AdmissionController> admission_;

  /// The cross-query cache (private or shared per Options). Null when off.
  std::shared_ptr<TextCache> cache_;

  /// Corpus-change watch: the document count observed by the last Run().
  /// SIZE_MAX until first observed (no spurious invalidation on startup).
  std::atomic<size_t> last_corpus_size_{static_cast<size_t>(-1)};
};

}  // namespace textjoin

#endif  // TEXTJOIN_SQL_FEDERATION_SERVICE_H_
