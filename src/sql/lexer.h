#ifndef TEXTJOIN_SQL_LEXER_H_
#define TEXTJOIN_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

/// \file
/// Tokenizer for the mini SQL dialect (see sql/parser.h).

namespace textjoin {

/// Token categories produced by the lexer.
enum class SqlTokenKind {
  kIdentifier,  ///< table / column / keyword text (case preserved).
  kString,      ///< 'single quoted' literal (quotes stripped, '' escapes).
  kInteger,
  kFloat,
  kSymbol,  ///< One of  . , * ( ) = != < <= > >=
  kEnd,
};

/// One lexed token with its source offset (for error messages).
struct SqlToken {
  SqlTokenKind kind = SqlTokenKind::kEnd;
  std::string text;
  size_t offset = 0;
};

/// Tokenizes `sql`. The result always ends with a kEnd token. Fails with
/// InvalidArgument on unterminated strings or unexpected characters.
Result<std::vector<SqlToken>> LexSql(const std::string& sql);

}  // namespace textjoin

#endif  // TEXTJOIN_SQL_LEXER_H_
