#include "core/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace textjoin {

PredicateMask FullMask(size_t k) {
  TEXTJOIN_CHECK(k <= 31, "at most 31 text join predicates supported");
  return static_cast<PredicateMask>((1u << k) - 1u);
}

std::string MaskToString(PredicateMask mask) {
  std::string out = "{";
  bool first = true;
  for (uint32_t i = 0; i < 32; ++i) {
    if ((mask & (1u << i)) == 0) continue;
    if (!first) out += ",";
    out += std::to_string(i + 1);
    first = false;
  }
  out += "}";
  return out;
}

CostModel::CostModel(CostParams params, ForeignJoinStats stats)
    : params_(params), stats_(std::move(stats)) {
  TEXTJOIN_CHECK(stats_.num_documents > 0, "cost model needs D > 0");
  TEXTJOIN_CHECK(stats_.correlation_g >= 1, "correlation g must be >= 1");
}

std::vector<double> CostModel::SortedStats(PredicateMask mask,
                                           bool selectivity) const {
  std::vector<double> values;
  for (size_t i = 0; i < stats_.predicates.size(); ++i) {
    if ((mask & (1u << i)) == 0) continue;
    values.push_back(selectivity ? stats_.predicates[i].selectivity
                                 : stats_.predicates[i].fanout);
  }
  std::sort(values.begin(), values.end());
  return values;
}

double CostModel::JointSelectivity(PredicateMask mask) const {
  const std::vector<double> s = SortedStats(mask, /*selectivity=*/true);
  if (s.empty()) return 1.0;
  const size_t g = std::min<size_t>(s.size(),
                                    static_cast<size_t>(stats_.correlation_g));
  double joint = 1.0;
  for (size_t i = 0; i < g; ++i) joint *= s[i];
  return joint;
}

double CostModel::JointFanout(PredicateMask mask) const {
  const std::vector<double> f = SortedStats(mask, /*selectivity=*/false);
  double joint;
  if (f.empty()) {
    // No join predicates in the subset: a search matches whatever the text
    // selections match.
    joint = stats_.num_selection_terms > 0 ? stats_.selection_match_docs
                                           : stats_.num_documents;
    return joint;
  }
  const size_t g = std::min<size_t>(f.size(),
                                    static_cast<size_t>(stats_.correlation_g));
  joint = 1.0;
  for (size_t i = 0; i < g; ++i) joint *= f[i];
  joint /= std::pow(stats_.num_documents, static_cast<double>(g) - 1.0);
  // Independent narrowing by the text selections (if any).
  if (stats_.num_selection_terms > 0 && stats_.num_documents > 0) {
    joint *= std::min(1.0, stats_.selection_match_docs / stats_.num_documents);
  }
  return joint;
}

double CostModel::DistinctCombinations(PredicateMask mask) const {
  double product = 1.0;
  bool any = false;
  for (size_t i = 0; i < stats_.predicates.size(); ++i) {
    if ((mask & (1u << i)) == 0) continue;
    product *= std::max(1.0, stats_.predicates[i].num_distinct);
    any = true;
  }
  if (!any) return 0.0;
  return std::min(product, stats_.num_tuples);
}

double CostModel::TotalMatchedDocs(double n, PredicateMask mask) const {
  return n * JointFanout(mask);
}

double CostModel::DistinctMatchedDocs(double n, PredicateMask mask) const {
  const double d = stats_.num_documents;
  const double f = std::min(JointFanout(mask), d);
  if (d <= 0.0) return 0.0;
  return d * (1.0 - std::pow(1.0 - f / d, n));
}

double CostModel::PostingsScanned(double n, PredicateMask mask) const {
  double per_search = stats_.selection_postings;
  for (size_t i = 0; i < stats_.predicates.size(); ++i) {
    if ((mask & (1u << i)) == 0) continue;
    // A posting list for a term from column i has ~f_i postings (width-1
    // posting assumption, as in the paper).
    per_search += stats_.predicates[i].fanout;
  }
  return n * per_search;
}

double CostModel::CostTS() const {
  const PredicateMask all = FullMask(stats_.predicates.size());
  const double n = DistinctCombinations(all);
  const double transmit = stats_.need_document_fields ? params_.long_form
                                                      : params_.short_form;
  return params_.invocation * n +
         params_.per_posting * PostingsScanned(n, all) +
         transmit * TotalMatchedDocs(n, all);
}

double CostModel::CostRTP() const {
  // One selection-only search; fetch and SQL-match each matching document.
  const double docs = stats_.selection_match_docs;
  return params_.invocation +
         params_.per_posting * stats_.selection_postings +
         (params_.long_form + params_.relational_match) * docs;
}

double CostModel::CostSJ() const {
  const PredicateMask all = FullMask(stats_.predicates.size());
  const double n = DistinctCombinations(all);
  // Each disjunct carries one term per join predicate; the selection terms
  // are shared per batch, so the batch capacity is reduced by them.
  const double terms_per_disjunct =
      std::max<double>(1.0, stats_.predicates.size());
  const double capacity =
      std::max(1.0, stats_.max_terms - stats_.num_selection_terms);
  const double batches = std::ceil(n * terms_per_disjunct / capacity);
  return params_.invocation * batches +
         params_.per_posting * PostingsScanned(n, all) +
         params_.short_form * DistinctMatchedDocs(n, all);
}

double CostModel::CostSJRTP() const {
  const PredicateMask all = FullMask(stats_.predicates.size());
  const double n = DistinctCombinations(all);
  const double distinct_docs = DistinctMatchedDocs(n, all);
  return CostSJ() +
         (params_.long_form + params_.relational_match) * distinct_docs;
}

double CostModel::CostProbe(PredicateMask mask) const {
  const double n = DistinctCombinations(mask);
  return params_.invocation * n +
         params_.per_posting * PostingsScanned(n, mask) +
         params_.short_form * TotalMatchedDocs(n, mask);
}

double CostModel::CostProbeTS(PredicateMask mask) const {
  const PredicateMask all = FullMask(stats_.predicates.size());
  // Surviving distinct combinations after the probe: the full-key distinct
  // count thinned by the probe subset's joint selectivity.
  const double survivors = DistinctCombinations(all) * JointSelectivity(mask);
  const double transmit = stats_.need_document_fields ? params_.long_form
                                                      : params_.short_form;
  return CostProbe(mask) + params_.invocation * survivors +
         params_.per_posting * PostingsScanned(survivors, all) +
         transmit * TotalMatchedDocs(survivors, all);
}

double CostModel::CostProbeRTP(PredicateMask mask) const {
  // Failed probes match no documents, so the documents to fetch are exactly
  // the distinct documents the probe phase matched.
  const double n = DistinctCombinations(mask);
  const double docs = DistinctMatchedDocs(n, mask);
  return CostProbe(mask) +
         (params_.long_form + params_.relational_match) * docs;
}

}  // namespace textjoin
