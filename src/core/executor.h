#ifndef TEXTJOIN_CORE_EXECUTOR_H_
#define TEXTJOIN_CORE_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "connector/resilience.h"
#include "connector/sharding.h"
#include "connector/text_source.h"
#include "core/federated_query.h"
#include "core/pipeline.h"
#include "core/plan.h"
#include "relational/catalog.h"

/// \file
/// Executes PrL plans against the catalog and the external text source.

namespace textjoin {

/// The materialized output of a query execution.
struct ExecutionResult {
  Schema schema;
  std::vector<Row> rows;
};

/// Per-node runtime measurements for EXPLAIN ANALYZE.
struct NodeProfile {
  size_t actual_rows = 0;     ///< Rows the node emitted.
  AccessMeter meter_delta;    ///< Text-source charges attributable to it.
  /// Per-stage breakdown for nodes that run on the staged pipeline
  /// (foreign-join and probe nodes): wall-clock and meter attribution per
  /// stage. Empty for relational nodes.
  pipeline::PipelineProfile stages;
};

/// Profile of one execution, keyed by plan node.
struct ExecutionProfile {
  std::map<const PlanNode*, NodeProfile> nodes;
  /// What the overload layer did during this execution (hedge races,
  /// limiter queueing, deadline sheds, admission wait). All-zero — and the
  /// `| overload` EXPLAIN ANALYZE line absent — when the layer is off or
  /// idle, so overload-off output is byte-identical to before.
  OverloadActivity overload;
  /// Per-shard-replica physical attribution (sharded topologies only;
  /// empty — and the `| shard` lines absent — for a single backend).
  ShardActivity shards;
};

/// Renders the plan with estimated AND actual rows / costs per node.
std::string ExplainAnalyze(const PlanNode& root, const FederatedQuery& query,
                           const ExecutionProfile& profile,
                           const CostParams& params = CostParams{});

/// Knobs controlling how a plan executes. `parallelism` is the number of
/// concurrent text-source operations a foreign-join / probe node may have
/// in flight; 1 means fully serial execution. Parallel execution produces
/// byte-identical results AND meter totals to serial execution (see
/// DESIGN.md, "Concurrency model") — it only changes wall-clock time.
/// The executor clamps `parallelism` to the source's advertised
/// max_concurrency() (sources that are not safe to call concurrently
/// advertise 1 and get serial execution instead of silent races).
///
/// `failure_mode` decides how execution reacts when a text-source
/// operation fails even after the source's own resilience layer (if any)
/// gave up — see FailureMode in connector/resilience.h. The default
/// fail-fast reproduces the historical behavior.
/// `deadline` arms deadline-aware load shedding (see
/// StageScheduler::SetDeadline): once it passes, remaining text-source
/// operations are shed instead of issued — under best-effort the query
/// finishes with the rows it has (`complete == false`, sheds counted in
/// the DegradationReport), under fail-fast it aborts with
/// DeadlineExceeded. The default (time_point::max) never sheds. `clock` is
/// the shedding clock (null = steady_clock; injectable for tests).
/// `priority` is carried for the service's admission queue — higher runs
/// first when queries queue for an execution slot; the executor itself
/// does not reorder anything.
struct ExecutorOptions {
  int parallelism = 1;
  FailureMode failure_mode = FailureMode::kFailFast;
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  int priority = 0;
  SteadyClockFn clock;
  /// Cooperative cancellation (see StageScheduler::SetCancelToken): once
  /// the token fires, remaining operations and pending units abandon and
  /// the query errors out with kCancelled. A null (default) token never
  /// cancels. The executor also threads it to every worker thread as the
  /// ambient CurrentCancelToken(), so connector-side waits observe it.
  CancelToken cancel;
};

/// Walks a plan tree bottom-up, running scans/filters/joins with the
/// relational operators, probe nodes with ProbeSemiJoinReduce, and the
/// foreign-join node with the plan's chosen method. The final projection
/// (the query's SELECT list) is applied on top.
class PlanExecutor {
 public:
  /// All pointers must outlive the executor. When `options.parallelism > 1`
  /// and `pool` is null, the executor owns a pool of `parallelism - 1`
  /// helper threads (the calling thread participates in every parallel
  /// loop). A caller-provided `pool` is shared, not owned — this lets one
  /// service run many executors over one set of threads.
  explicit PlanExecutor(const Catalog* catalog, TextSource* source,
                        ExecutorOptions options = {},
                        ThreadPool* pool = nullptr)
      : catalog_(catalog), source_(source), options_(options), pool_(pool) {
    // Respect the source's concurrency contract: a cap below the requested
    // parallelism clamps it. A caller-provided pool cannot enforce the cap
    // (its width is fixed), so a clamped executor falls back to an owned,
    // correctly-sized pool.
    const int cap = source_ != nullptr ? source_->max_concurrency() : 0;
    if (cap > 0 && options_.parallelism > cap) {
      options_.parallelism = cap;
      pool_ = nullptr;
    }
    if (options_.parallelism <= 1) {
      pool_ = nullptr;
    } else if (pool_ == nullptr) {
      owned_pool_ = std::make_unique<ThreadPool>(options_.parallelism - 1);
      pool_ = owned_pool_.get();
    }
  }

  /// Executes `root` for `query` and applies the query's projection.
  /// When `profile` is non-null, records per-node actual rows and meter
  /// deltas (requires the source to be — or decorate — a RemoteTextSource;
  /// deltas are zero otherwise). When `degradation` is non-null, receives
  /// the execution's skip/re-split account (always `complete` under
  /// fail-fast, which never absorbs a failure).
  Result<ExecutionResult> Execute(const PlanNode& root,
                                  const FederatedQuery& query,
                                  ExecutionProfile* profile = nullptr,
                                  DegradationReport* degradation = nullptr);

 private:
  /// Exec wraps ExecNode with profile bookkeeping (actual row counts).
  /// `sched` is the execution's shared stage scheduler (null for plans
  /// without a text source): every pipeline-backed node joins its DAG, so a
  /// multi-join PrL plan executes as one composed pipeline.
  Result<ExecutionResult> Exec(const PlanNode& node,
                               const FederatedQuery& query,
                               ExecutionProfile* profile,
                               const FaultPolicy& policy,
                               pipeline::StageScheduler* sched);
  Result<ExecutionResult> ExecNode(const PlanNode& node,
                                   const FederatedQuery& query,
                                   ExecutionProfile* profile,
                                   const FaultPolicy& policy,
                                   pipeline::StageScheduler* sched);

  /// Builds the foreign-join spec for the text join of `query` with
  /// `left_schema` as the outer side.
  ForeignJoinSpec BuildSpec(const FederatedQuery& query,
                            const Schema& left_schema) const;

  const Catalog* catalog_;
  TextSource* source_;
  ExecutorOptions options_;
  ThreadPool* pool_ = nullptr;
  std::unique_ptr<ThreadPool> owned_pool_;
};

/// Reference evaluation: executes `query` by brute force (cross product of
/// relations x documents, filtering every conjunct relationally, fetching
/// every document). Exponentially expensive but obviously correct — used by
/// tests and benches as ground truth. Does not touch the meter if `source`
/// is null (documents come straight from `engine_docs`).
Result<ExecutionResult> ReferenceExecute(
    const FederatedQuery& query, const Catalog& catalog,
    const std::vector<Document>& all_documents);

}  // namespace textjoin

#endif  // TEXTJOIN_CORE_EXECUTOR_H_
