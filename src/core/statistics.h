#ifndef TEXTJOIN_CORE_STATISTICS_H_
#define TEXTJOIN_CORE_STATISTICS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/cost_model.h"
#include "core/federated_query.h"
#include "relational/catalog.h"
#include "relational/table_stats.h"
#include "text/searchable.h"

/// \file
/// The optimizer's statistics store (paper Section 4.2): per text-join
/// predicate selectivity and fanout (obtained by sampling, or exactly in
/// oracle mode for experiments), per text-selection match counts, and
/// relational table statistics.

namespace textjoin {

/// Statistics for a text selection predicate ('term' in field).
struct TextSelectionStats {
  double match_docs = 0.0;  ///< Documents matching the term.
  double postings = 0.0;    ///< Inverted-list postings read to evaluate it.
};

/// Holds every estimate the optimizer consumes. Estimates are keyed by the
/// textual form of the predicate, so they are shared across queries (the
/// paper amortizes sampling cost this way).
class StatsRegistry {
 public:
  /// Records s_i / f_i for `column_ref in field`.
  void SetTextJoinStats(const std::string& column_ref,
                        const std::string& field, double selectivity,
                        double fanout);

  /// The recorded stats. Fails with NotFound if never set.
  Result<TextPredicateStats> GetTextJoinStats(const std::string& column_ref,
                                              const std::string& field) const;

  /// Records match count / postings for a selection term.
  void SetTextSelectionStats(const std::string& term,
                             const std::string& field, double match_docs,
                             double postings);

  Result<TextSelectionStats> GetTextSelectionStats(
      const std::string& term, const std::string& field) const;

  /// Records relational statistics for a table.
  void SetTableStats(const std::string& table_name, TableStats stats);

  Result<const TableStats*> GetTableStats(const std::string& table_name) const;

  bool HasTextJoinStats(const std::string& column_ref,
                        const std::string& field) const;

 private:
  // Selectivity/fanout only; N_i comes from table stats at use time.
  struct JoinStatsEntry {
    double selectivity;
    double fanout;
  };
  std::map<std::pair<std::string, std::string>, JoinStatsEntry> join_stats_;
  std::map<std::pair<std::string, std::string>, TextSelectionStats>
      selection_stats_;
  std::map<std::string, TableStats> table_stats_;
};

/// Fills `registry` with *exact* statistics for every text predicate of
/// `query`, by enumerating distinct column values against the engine
/// directly (oracle mode — no metered source traffic). This mirrors the
/// paper's assumption that calibrated statistics are available to the
/// optimizer; the sampling path (connector/sampler.h) provides the
/// realistic alternative.
Status ComputeExactStats(const FederatedQuery& query, const Catalog& catalog,
                         const SearchableCorpus& corpus,
                         StatsRegistry& registry);

/// The sharded-topology overload: each selection / distinct join value is
/// probed against every shard and the counts summed (docids partition
/// disjointly, so the sums equal the single-corpus numbers — exactly so
/// when the shards evaluate exhaustively).
Status ComputeExactStats(const FederatedQuery& query, const Catalog& catalog,
                         const std::vector<const SearchableCorpus*>& shards,
                         StatsRegistry& registry);

}  // namespace textjoin

#endif  // TEXTJOIN_CORE_STATISTICS_H_
