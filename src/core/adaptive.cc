#include "core/adaptive.h"

#include <map>
#include <set>
#include <unordered_map>

#include "core/pipeline.h"

namespace textjoin {

Result<AdaptiveResult> ExecuteProbeRTPAdaptive(
    const ForeignJoinSpec& spec, const std::vector<Row>& left_rows,
    TextSource& source, PredicateMask probe_mask, size_t fetch_budget) {
  TEXTJOIN_RETURN_IF_ERROR(pipeline::ValidateProbeMask(spec, probe_mask));
  TEXTJOIN_ASSIGN_OR_RETURN(pipeline::ResolvedSpec rspec,
                            pipeline::ResolveSpec(spec));
  const PredicateMask all = FullMask(spec.joins.size());

  AdaptiveResult out;
  out.join.schema = rspec.output_schema;

  // Phase 1 — probes per distinct probe-column combination (short form).
  const auto probe_groups =
      pipeline::GroupByTerms(rspec, left_rows, probe_mask);
  std::map<std::vector<std::string>, std::vector<std::string>> probe_docs;
  std::set<std::string> distinct_candidates;
  for (const auto& [probe_terms, row_indices] : probe_groups) {
    TextQueryPtr probe =
        pipeline::BuildSearch(rspec, probe_terms, probe_mask);
    TEXTJOIN_ASSIGN_OR_RETURN(std::vector<std::string> docids,
                              source.Search(*probe));
    if (docids.empty()) continue;
    distinct_candidates.insert(docids.begin(), docids.end());
    probe_docs[probe_terms] = std::move(docids);
  }
  out.candidate_docs = distinct_candidates.size();

  if (out.candidate_docs <= fetch_budget) {
    // Phase 2a — within budget: fetch once per distinct doc and finish by
    // relational matching, exactly as P+RTP.
    out.outcome = AdaptiveOutcome::kFetched;
    std::unordered_map<std::string, Document> fetched;
    for (const auto& [probe_terms, docids] : probe_docs) {
      auto group_it = probe_groups.find(probe_terms);
      TEXTJOIN_CHECK(group_it != probe_groups.end(), "group lookup");
      std::vector<const Document*> combo_docs;
      for (const std::string& docid : docids) {
        auto it = fetched.find(docid);
        if (it == fetched.end()) {
          TEXTJOIN_ASSIGN_OR_RETURN(Document doc, source.Fetch(docid));
          it = fetched.emplace(docid, std::move(doc)).first;
        }
        combo_docs.push_back(&it->second);
      }
      pipeline::ChargeRelationalMatches(source, combo_docs.size());
      for (const Document* doc : combo_docs) {
        Row doc_row = pipeline::DocumentToRow(spec.text, *doc);
        for (size_t r : group_it->second) {
          if (pipeline::DocMatchesRow(rspec, left_rows[r], *doc,
                                      all & ~probe_mask)) {
            out.join.rows.push_back(ConcatRows(left_rows[r], doc_row));
          }
        }
      }
    }
    return out;
  }

  // Phase 2b — the estimates were wrong: switch to tuple substitution for
  // the tuples whose probes succeeded. No candidate is fetched; each full
  // search returns exactly the matching documents.
  out.outcome = AdaptiveOutcome::kSwitched;
  std::vector<Row> survivors;
  for (const auto& [probe_terms, docids] : probe_docs) {
    auto group_it = probe_groups.find(probe_terms);
    for (size_t r : group_it->second) survivors.push_back(left_rows[r]);
  }
  TEXTJOIN_ASSIGN_OR_RETURN(
      ForeignJoinResult ts,
      ExecuteForeignJoin(JoinMethodKind::kTS, spec, survivors, source));
  out.join.rows = std::move(ts.rows);
  return out;
}

}  // namespace textjoin
