#ifndef TEXTJOIN_CORE_FEDERATED_QUERY_H_
#define TEXTJOIN_CORE_FEDERATED_QUERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/expression.h"
#include "relational/schema.h"

/// \file
/// The conjunctive query class of the paper (Section 2.2/2.3):
/// Select-Project-Join queries over one or more stored relations and one
/// external text source, with three kinds of conjuncts:
///   - relational predicates (selections and joins over stored relations),
///   - text selections:  'constant term' in text.field,
///   - text joins:       relation.column in text.field.

namespace textjoin {

/// A stored relation occurrence in the FROM list.
struct RelationRef {
  std::string table_name;  ///< Catalog name.
  std::string alias;       ///< Reference name in the query (defaults to
                           ///< table_name).

  const std::string& name() const {
    return alias.empty() ? table_name : alias;
  }
};

/// 'term' in text.field — a selection on the text source.
struct TextSelection {
  std::string term;   ///< Constant word or phrase.
  std::string field;  ///< Document field name.

  std::string ToString() const { return "'" + term + "' in " + field; }
};

/// An aggregate select item:
/// COUNT(*) / COUNT(col) / MIN(col) / MAX(col) / SUM(col) / AVG(col).
struct AggregateItem {
  enum class Kind { kCountStar, kCount, kMin, kMax, kSum, kAvg };
  Kind kind = Kind::kCountStar;
  std::string column;  ///< Empty for COUNT(*).

  /// Output column name, e.g. "count(*)" or "min(student.year)".
  std::string Name() const;
};

/// rel.column in text.field — a foreign join predicate.
struct TextJoinPredicate {
  std::string column_ref;  ///< Qualified column, e.g. "student.name".
  std::string field;       ///< Document field name.

  std::string ToString() const { return column_ref + " in " + field; }
};

/// Declares how the external text source appears as a relation (paper
/// Section 2.2): a docid column plus one column per text field.
struct TextRelationDecl {
  std::string alias;                 ///< e.g. "mercury".
  std::vector<std::string> fields;   ///< Field names, e.g. {title, author}.

  /// The relational schema of the text side: (alias.docid, alias.field...),
  /// all strings (multi-valued fields are flattened; see
  /// common/text_match.h).
  Schema ToSchema() const;

  /// True if `field` is declared.
  bool HasField(const std::string& field) const;
};

/// A parsed/constructed conjunctive text-relational query.
struct FederatedQuery {
  std::vector<RelationRef> relations;
  TextRelationDecl text;                    ///< The external source.
  bool has_text_relation = false;           ///< False for pure-relational.
  std::vector<ExprPtr> relational_predicates;  ///< Conjuncts over relations.
  std::vector<TextSelection> text_selections;
  std::vector<TextJoinPredicate> text_joins;
  std::vector<std::string> output_columns;  ///< Projection; empty = SELECT *.
  bool distinct = false;                    ///< SELECT DISTINCT.
  /// Aggregate select items. When non-empty the query is an aggregation:
  /// output = group_by columns followed by the aggregates, and
  /// output_columns must equal group_by.
  std::vector<AggregateItem> aggregates;
  std::vector<std::string> group_by;        ///< GROUP BY columns.
  std::vector<std::string> order_by;        ///< ORDER BY columns (asc).
  size_t limit = kNoLimit;                  ///< LIMIT n, or kNoLimit.

  /// Sentinel for "no LIMIT clause".
  static constexpr size_t kNoLimit = static_cast<size_t>(-1);

  FederatedQuery() = default;
  FederatedQuery(FederatedQuery&&) = default;
  FederatedQuery& operator=(FederatedQuery&&) = default;

  /// Deep copy (expressions are cloned).
  FederatedQuery Clone() const;

  /// Finds a relation by its reference name. Fails with NotFound.
  Result<const RelationRef*> FindRelation(const std::string& name) const;

  /// True if the projection needs document fields beyond docid (drives
  /// whether join methods must fetch long forms).
  bool NeedsDocumentFields() const;

  /// Renders SQL-ish text for logs and EXPLAIN.
  std::string ToString() const;
};

}  // namespace textjoin

#endif  // TEXTJOIN_CORE_FEDERATED_QUERY_H_
