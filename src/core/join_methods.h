#ifndef TEXTJOIN_CORE_JOIN_METHODS_H_
#define TEXTJOIN_CORE_JOIN_METHODS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "connector/resilience.h"
#include "connector/text_source.h"
#include "core/cost_model.h"
#include "core/federated_query.h"
#include "relational/schema.h"
#include "relational/tuple.h"

/// \file
/// The paper's foreign-join execution methods (Section 3). Every method
/// takes the same inputs — the outer relational rows, the text predicates,
/// and the opaque TextSource — and produces the same logical result: the
/// join of the rows with the matching documents. They differ only in how
/// many searches, probes, and document retrievals they spend, which the
/// TextSource's meter records.

namespace textjoin {

namespace pipeline {
struct PipelineProfile;
class StageScheduler;
}  // namespace pipeline

/// The six join methods of the paper.
enum class JoinMethodKind {
  kTS,     ///< Tuple substitution (distinct-tuple variant).
  kRTP,    ///< Relational text processing.
  kSJ,     ///< Semi-join: OR-batched searches, docid-only output.
  kSJRTP,  ///< Semi-join + relational text processing (general output).
  kPTS,    ///< Probing + tuple substitution.
  kPRTP,   ///< Probing + relational text processing.
};

/// Returns the paper's name for `kind` ("TS", "RTP", "SJ", "SJ+RTP",
/// "P+TS", "P+RTP").
const char* JoinMethodName(JoinMethodKind kind);

/// Static description of one foreign join, independent of the input rows.
struct ForeignJoinSpec {
  Schema left_schema;                      ///< Schema of the outer rows.
  std::vector<TextSelection> selections;   ///< Constant text predicates.
  std::vector<TextJoinPredicate> joins;    ///< column-in-field predicates;
                                           ///< columns resolve in
                                           ///< left_schema.
  TextRelationDecl text;                   ///< Text-side relation shape.
  bool need_document_fields = true;  ///< Output reads document fields
                                     ///< (forces long-form retrieval).
  bool left_columns_needed = true;   ///< Output reads outer columns (false
                                     ///< only for doc-side semi-joins like
                                     ///< the paper's Q2).
};

/// The joined rows. Schema is left_schema ⨯ text schema
/// (docid + one column per declared field). Methods that legitimately skip
/// work leave the skipped columns NULL: document fields are NULL when
/// !need_document_fields, and outer columns are NULL for kSJ.
struct ForeignJoinResult {
  Schema schema;
  std::vector<Row> rows;
};

/// Executes the foreign join with the chosen method. `probe_mask` selects
/// the probe columns for kPTS / kPRTP (bit i = i-th entry of spec.joins)
/// and must be 0 for the other methods.
///
/// When `pool` is non-null, the independent text-source round-trips of the
/// method (per-combination searches, OR-batches, document fetches) are
/// overlapped across its threads. Output row order and meter totals are
/// identical to serial execution: parallel phases write into per-index
/// slots that are assembled in deterministic order, and every method
/// issues the same set of operations regardless of parallelism (P+TS keeps
/// its probe-cache-ordered search sequence serial and overlaps only the
/// fetches).
///
/// Fails with InvalidArgument when the method is inapplicable:
///  - kRTP / kSJRTP / kPRTP and kSJ/kTS variants require what the paper
///    requires (RTP-family needs text selections for its initial search
///    except the probe variant; kSJ requires !left_columns_needed).
///
/// `policy` decides what happens when a source operation fails even after
/// the resilience layer (if the source is wrapped in one) gave up. The
/// default fail-fast policy reproduces the historical behavior exactly:
/// the first failure aborts the join. kRetryThenFail adds method-level
/// recovery (SJ re-splits failed OR-batches down to per-disjunct searches)
/// and absorbs advisory failures that cannot change the answer.
/// kBestEffort additionally skips failed units of work and reports the
/// loss through the policy's AtomicDegradation sink.
///
/// Every method executes as a staged pipeline (core/pipeline.h): this
/// function lowers `method` to its stage composition and runs it. When
/// `stage_profile` is non-null it receives the per-stage wall-clock and
/// meter attribution of the execution.
Result<ForeignJoinResult> ExecuteForeignJoin(
    JoinMethodKind method, const ForeignJoinSpec& spec,
    const std::vector<Row>& left_rows, TextSource& source,
    PredicateMask probe_mask = 0, ThreadPool* pool = nullptr,
    const FaultPolicy& policy = {},
    pipeline::PipelineProfile* stage_profile = nullptr);

/// The probe used as a semi-join reducer (Section 6, "Probe as a
/// Semi-join"): sends one probe per distinct combination of the probe
/// columns and returns the input rows whose combination matched at least
/// one document. Never changes the final query answer, only the sizes.
/// Probes for distinct combinations are independent and overlap across
/// `pool` when non-null. Because the reducer is purely advisory, a
/// recovering `policy` (retry-then-fail or best-effort) absorbs probe
/// failures by keeping the affected rows — the answer is unchanged, only
/// the reduction is weaker.
///
/// Runs as a three-stage pipeline composition. When `scheduler` is
/// non-null the reducer joins that scheduler's DAG (its pool/source/policy
/// win and `pool`/`policy` are ignored) so a plan executor can compose the
/// reduction with the join it feeds; `stage_profile` receives the
/// reducer's per-stage account when non-null.
Result<std::vector<Row>> ProbeSemiJoinReduce(
    const ForeignJoinSpec& spec, const std::vector<Row>& left_rows,
    TextSource& source, PredicateMask probe_mask, ThreadPool* pool = nullptr,
    const FaultPolicy& policy = {},
    pipeline::PipelineProfile* stage_profile = nullptr,
    pipeline::StageScheduler* scheduler = nullptr);

}  // namespace textjoin

#endif  // TEXTJOIN_CORE_JOIN_METHODS_H_
