#ifndef TEXTJOIN_CORE_ENUMERATOR_H_
#define TEXTJOIN_CORE_ENUMERATOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "connector/cost_meter.h"
#include "core/federated_query.h"
#include "core/plan.h"
#include "core/statistics.h"

/// \file
/// The modified System-R join enumerator of paper Section 6: dynamic
/// programming over join orders of {relations} ∪ {text source}, extended
/// with the four probe alternatives at each extension step:
///   (a) joinPlan(optPlan(S), R)
///   (b) joinPlan(probe(optPlan(S)), R)
///   (c) joinPlan(optPlan(S), probe(R))
///   (d) joinPlan(probe(optPlan(S)), probe(R))
/// Probe nodes must precede the foreign-join node, and the text source can
/// only be placed once every relation carrying a text join predicate is in
/// the prefix (the paper evaluates all text join predicates together at the
/// text system's position).
///
/// Because applying a probe trades cost for cardinality, plans for the same
/// subset are not totally ordered by cost. Following the paper's remark
/// that "considering probes is analogous to considering additional access
/// methods", the table keeps a small Pareto frontier over (cost, rows) per
/// subset — exactly how System R keeps plans with interesting orders — so a
/// pricier-but-smaller probed plan survives to pay off at the text join.
/// The plain left-deep plans are always enumerated, so the chosen plan is
/// never worse than the traditional one.

namespace textjoin {

/// Tuning knobs for the enumerator.
struct EnumeratorOptions {
  bool enable_probes = true;   ///< false = traditional left-deep space.
  int correlation_g = 1;       ///< g of the joint-statistics model.
  size_t max_probe_columns = 2;  ///< Theorem 5.3 bound (per reducer).
  double cpu_cost_per_tuple = 1e-7;  ///< Relational work, sec/tuple.
  CostParams cost_params;      ///< Text access cost constants.
  size_t max_pareto_plans = 12;  ///< Frontier cap per subset.
};

/// Counters describing one optimization run.
struct EnumeratorReport {
  uint64_t join_tasks = 0;       ///< 2-way join tasks considered.
  uint64_t plans_generated = 0;  ///< Candidate plans costed.
  uint64_t plans_retained = 0;   ///< Plans kept across all DP entries.
};

/// Optimizes federated conjunctive queries into PrL plans.
class Enumerator {
 public:
  /// All pointers must outlive the enumerator. `num_documents` /
  /// `max_search_terms` describe the text source (D and M).
  Enumerator(const Catalog* catalog, const StatsRegistry* stats,
             size_t num_documents, size_t max_search_terms,
             EnumeratorOptions options)
      : catalog_(catalog),
        stats_(stats),
        num_documents_(num_documents),
        max_search_terms_(max_search_terms),
        options_(options) {}

  /// Produces the least-cost plan for `query`. Requires statistics for
  /// every referenced table and text predicate to be present in the
  /// registry.
  Result<PlanNodePtr> Optimize(const FederatedQuery& query);

  /// Counters from the last Optimize call.
  const EnumeratorReport& report() const { return report_; }

 private:
  const Catalog* catalog_;
  const StatsRegistry* stats_;
  size_t num_documents_;
  size_t max_search_terms_;
  EnumeratorOptions options_;
  EnumeratorReport report_;
};

}  // namespace textjoin

#endif  // TEXTJOIN_CORE_ENUMERATOR_H_
