#ifndef TEXTJOIN_CORE_JOIN_METHOD_IMPLS_H_
#define TEXTJOIN_CORE_JOIN_METHOD_IMPLS_H_

#include <vector>

#include "core/join_methods_internal.h"

/// \file
/// Per-method entry points, dispatched by ExecuteForeignJoin. Internal.
/// Every method accepts an optional ThreadPool; null means serial. All
/// parallel variants produce byte-identical results and meter totals to
/// serial execution (see join_methods.h).

namespace textjoin::internal {

/// Section 3.1 — tuple substitution, one search per distinct combination of
/// the join columns. Parallel across combinations.
Result<ForeignJoinResult> ExecuteTS(const ResolvedSpec& rspec,
                                    const std::vector<Row>& left_rows,
                                    TextSource& source, ThreadPool* pool,
                                    const FaultPolicy& policy);

/// Section 3.2 — relational text processing: one selections-only search,
/// fetch the matches, join them in SQL. Parallel across document fetches.
Result<ForeignJoinResult> ExecuteRTP(const ResolvedSpec& rspec,
                                     const std::vector<Row>& left_rows,
                                     TextSource& source, ThreadPool* pool,
                                     const FaultPolicy& policy);

/// Section 3.2 — semi-join: OR-batched disjuncts under the term limit M;
/// doc-side semi-join output (docids). Batches are issued concurrently.
/// A recovering policy re-splits a failed batch in half repeatedly, down
/// to single-disjunct (per-tuple) searches.
Result<ForeignJoinResult> ExecuteSJ(const ResolvedSpec& rspec,
                                    const std::vector<Row>& left_rows,
                                    TextSource& source, ThreadPool* pool,
                                    const FaultPolicy& policy);

/// Section 3.2 — semi-join then relational text processing to recover the
/// (tuple, document) pairing for general (non-semi-join) queries.
Result<ForeignJoinResult> ExecuteSJRTP(const ResolvedSpec& rspec,
                                       const std::vector<Row>& left_rows,
                                       TextSource& source, ThreadPool* pool,
                                       const FaultPolicy& policy);

/// Section 3.3 — probing + tuple substitution, with the probe cache and
/// send-probe-only-after-failure policy of the paper's algorithm. The
/// search/probe sequence stays serial (the cache's skip decisions depend on
/// earlier outcomes); document fetches overlap. Failed cache probes are
/// advisory (the outcome is simply not cached).
Result<ForeignJoinResult> ExecutePTS(const ResolvedSpec& rspec,
                                     const std::vector<Row>& left_rows,
                                     TextSource& source, PredicateMask mask,
                                     ThreadPool* pool,
                                     const FaultPolicy& policy);

/// Section 3.3 — probing + relational text processing: fetch the documents
/// matched by the successful probes, then match the remaining predicates in
/// SQL. Probes and fetches each overlap.
Result<ForeignJoinResult> ExecutePRTP(const ResolvedSpec& rspec,
                                      const std::vector<Row>& left_rows,
                                      TextSource& source, PredicateMask mask,
                                      ThreadPool* pool,
                                      const FaultPolicy& policy);

}  // namespace textjoin::internal

#endif  // TEXTJOIN_CORE_JOIN_METHOD_IMPLS_H_
