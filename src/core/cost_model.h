#ifndef TEXTJOIN_CORE_COST_MODEL_H_
#define TEXTJOIN_CORE_COST_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "connector/cost_meter.h"

/// \file
/// The analytical cost model of Section 4 of the paper: per-predicate
/// selectivity/fanout statistics, g-correlated joint statistics, the
/// derived quantities V (total matched docs), U (distinct matched docs) and
/// L (inverted-list postings scanned), and closed-form cost formulas for
/// each join method.
///
/// Conventions (see DESIGN.md §3 "Cost model conventions"):
///  - fanout f_i is the *unconditional* mean number of documents a term
///    from column i matches, so V_{n,J} = n * F_{g,J};
///  - joint stats for a predicate set use the g most selective predicates:
///    S = prod of g smallest s_i, F = (prod of g smallest f_i) / D^(g-1);
///  - text selections are folded in as an independent narrowing factor and
///    as extra postings per search, which the paper omits from the printed
///    formulas but our simulated server physically charges. This strictly
///    improves prediction fidelity without changing any ranking the paper
///    reports.

namespace textjoin {

/// Statistics for one text join predicate (column_i in field_i).
struct TextPredicateStats {
  double selectivity = 0.0;   ///< s_i: P(term from column matches >=1 doc).
  double fanout = 0.0;        ///< f_i: unconditional mean docs matched.
  double num_distinct = 0.0;  ///< N_i: distinct values in the column.
};

/// Everything the formulas need about one foreign join.
struct ForeignJoinStats {
  double num_tuples = 0.0;  ///< N: joining (outer relation) tuples.
  double num_documents = 0.0;  ///< D: documents in the text database.
  double max_terms = 70.0;     ///< M: per-search term limit.
  std::vector<TextPredicateStats> predicates;  ///< One per text join pred.
  int correlation_g = 1;  ///< g of the g-correlated model (1 = fully
                          ///< correlated, k = independent).
  /// Whether the query's output needs document fields beyond docid. When
  /// false, TS-family methods transmit short forms only (the paper's Q2-Q4
  /// regime), while the RTP family still retrieves long forms for
  /// relational matching.
  bool need_document_fields = true;

  // --- text selections on the query (may be empty) ---
  double selection_match_docs = 0.0;  ///< Expected docs passing the text
                                      ///< selections alone.
  double selection_postings = 0.0;    ///< Inverted-list postings read to
                                      ///< evaluate the selections once.
  double num_selection_terms = 0.0;   ///< Basic terms in the selections.
};

/// A subset of join predicates, as a bitmask over indices into
/// ForeignJoinStats::predicates. Bit i set = predicate i in the subset.
using PredicateMask = uint32_t;

/// Returns the mask with all k predicates.
PredicateMask FullMask(size_t k);

/// Renders a mask as "{1,3}" (1-based, matching the paper's column
/// numbering).
std::string MaskToString(PredicateMask mask);

/// The Section 4 cost model for a single foreign join.
class CostModel {
 public:
  CostModel(CostParams params, ForeignJoinStats stats);

  const CostParams& params() const { return params_; }
  const ForeignJoinStats& stats() const { return stats_; }
  size_t num_predicates() const { return stats_.predicates.size(); }

  /// S_{g,J}: joint selectivity of the predicate subset `mask`.
  double JointSelectivity(PredicateMask mask) const;

  /// F_{g,J}: joint (unconditional) fanout of the subset, including the
  /// independent narrowing by the text selections.
  double JointFanout(PredicateMask mask) const;

  /// N_J = min(prod_{i in J} N_i, N): distinct combinations in the
  /// projection of the relation onto the probe columns. The product form
  /// deliberately overestimates (paper Section 4.3), which biases against
  /// probing unless it is clearly better.
  double DistinctCombinations(PredicateMask mask) const;

  /// V_{n,J} = n * F_{g,J}: total documents across n result sets.
  double TotalMatchedDocs(double n, PredicateMask mask) const;

  /// U_{n,J} = D * (1 - (1 - F/D)^n): distinct documents across n searches.
  double DistinctMatchedDocs(double n, PredicateMask mask) const;

  /// L_{n,J}: postings scanned by n searches instantiating the subset
  /// (join-column lists plus the selection lists each search rereads).
  double PostingsScanned(double n, PredicateMask mask) const;

  // ---- Method cost formulas (Section 4.3) ----

  /// Tuple substitution with the distinct-tuple variant: one long-form
  /// search per distinct join-column combination.
  double CostTS() const;

  /// Relational text processing: one selection-only search, fetch the
  /// matching documents, match them in SQL. Requires text selections.
  double CostRTP() const;

  /// Semi-join: OR-batched disjuncts, ceil(N_K * terms_per_disjunct / M)
  /// invocations, short-form distinct docids back.
  double CostSJ() const;

  /// SJ followed by relational text processing of the distinct matched
  /// documents (long-form fetch + SQL matching).
  double CostSJRTP() const;

  /// The probe phase on subset `mask`: short-form searches per distinct
  /// combination.
  double CostProbe(PredicateMask mask) const;

  /// Probe on `mask`, then tuple substitution for surviving tuples.
  double CostProbeTS(PredicateMask mask) const;

  /// Probe on `mask`, then long-form fetch of the documents the successful
  /// probes matched, then relational matching of the remaining predicates.
  double CostProbeRTP(PredicateMask mask) const;

 private:
  /// Sorted (ascending) selectivities/fanouts of the predicates in `mask`.
  std::vector<double> SortedStats(PredicateMask mask, bool selectivity) const;

  CostParams params_;
  ForeignJoinStats stats_;
};

}  // namespace textjoin

#endif  // TEXTJOIN_CORE_COST_MODEL_H_
