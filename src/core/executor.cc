#include "core/executor.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_set>

#include "common/string_util.h"
#include "common/text_match.h"
#include "connector/remote_text_source.h"
#include "core/join_methods.h"
#include "relational/operators.h"

namespace textjoin {

namespace {

/// Snapshot of the source's meter (zeros when the source is unmetered).
/// Decorator chains (resilience, chaos) are unwrapped to find the metered
/// source, so profiling keeps working under fault-tolerant wrappers.
AccessMeter MeterSnapshot(TextSource* source) {
  if (MeteredTextSource* metered = UnwrapMetered(source)) {
    return metered->meter();
  }
  return AccessMeter{};
}

/// a - b, fieldwise.
AccessMeter MeterDelta(const AccessMeter& a, const AccessMeter& b) {
  AccessMeter d;
  d.invocations = a.invocations - b.invocations;
  d.postings_processed = a.postings_processed - b.postings_processed;
  d.short_docs = a.short_docs - b.short_docs;
  d.long_docs = a.long_docs - b.long_docs;
  d.relational_matches = a.relational_matches - b.relational_matches;
  return d;
}

}  // namespace

ForeignJoinSpec PlanExecutor::BuildSpec(const FederatedQuery& query,
                                        const Schema& left_schema) const {
  ForeignJoinSpec spec;
  spec.left_schema = left_schema;
  spec.selections = query.text_selections;
  spec.joins = query.text_joins;
  spec.text = query.text;
  spec.need_document_fields = query.NeedsDocumentFields();
  // The projection decides whether outer columns are needed; every
  // relational predicate has already been applied below the foreign join.
  bool needs_left = query.output_columns.empty() && left_schema.num_columns();
  for (const std::string& ref : query.output_columns) {
    if (left_schema.Resolve(ref).ok()) needs_left = true;
  }
  spec.left_columns_needed = needs_left;
  return spec;
}

Result<ExecutionResult> PlanExecutor::Exec(const PlanNode& node,
                                           const FederatedQuery& query,
                                           ExecutionProfile* profile,
                                           const FaultPolicy& policy,
                                           pipeline::StageScheduler* sched) {
  TEXTJOIN_ASSIGN_OR_RETURN(ExecutionResult result,
                            ExecNode(node, query, profile, policy, sched));
  if (profile != nullptr) {
    profile->nodes[&node].actual_rows = result.rows.size();
  }
  return result;
}

Result<ExecutionResult> PlanExecutor::ExecNode(const PlanNode& node,
                                               const FederatedQuery& query,
                                               ExecutionProfile* profile,
                                               const FaultPolicy& policy,
                                               pipeline::StageScheduler* sched) {
  switch (node.kind) {
    case PlanNode::Kind::kScan: {
      TEXTJOIN_ASSIGN_OR_RETURN(Table * table,
                                catalog_->GetTable(node.table_name));
      ExecutionResult result;
      result.schema = node.output_schema;
      for (const Row& row : table->rows()) {
        bool pass = true;
        for (const ExprPtr& filter : node.filters) {
          ExprPtr bound = filter->Clone();
          TEXTJOIN_RETURN_IF_ERROR(bound->Bind(result.schema));
          if (!ValueIsTrue(bound->Eval(row))) {
            pass = false;
            break;
          }
        }
        if (pass) result.rows.push_back(row);
      }
      return result;
    }
    case PlanNode::Kind::kProbe: {
      TEXTJOIN_ASSIGN_OR_RETURN(
          ExecutionResult child,
          Exec(*node.left, query, profile, policy, sched));
      const AccessMeter before = MeterSnapshot(source_);
      ForeignJoinSpec spec;
      spec.left_schema = child.schema;
      spec.selections = query.text_selections;
      spec.text = query.text;
      for (size_t i : node.probe_pred_indices) {
        spec.joins.push_back(query.text_joins.at(i));
      }
      pipeline::PipelineProfile stages;
      TEXTJOIN_ASSIGN_OR_RETURN(
          std::vector<Row> survivors,
          ProbeSemiJoinReduce(spec, child.rows, *source_,
                              FullMask(spec.joins.size()), pool_, policy,
                              profile != nullptr ? &stages : nullptr, sched));
      if (profile != nullptr) {
        NodeProfile& np = profile->nodes[&node];
        np.meter_delta = MeterDelta(MeterSnapshot(source_), before);
        np.stages = std::move(stages);
      }
      ExecutionResult result;
      result.schema = child.schema;
      result.rows = std::move(survivors);
      return result;
    }
    case PlanNode::Kind::kForeignJoin: {
      TEXTJOIN_ASSIGN_OR_RETURN(
          ExecutionResult child,
          Exec(*node.left, query, profile, policy, sched));
      const AccessMeter before = MeterSnapshot(source_);
      ForeignJoinSpec spec = BuildSpec(query, child.schema);
      TEXTJOIN_ASSIGN_OR_RETURN(
          pipeline::Pipeline plan,
          pipeline::Pipeline::Lower(node.method.method, spec,
                                    node.method.probe_mask));
      pipeline::PipelineProfile stages;
      TEXTJOIN_ASSIGN_OR_RETURN(
          ForeignJoinResult joined,
          plan.Execute(spec, child.rows, *source_, pool_, policy,
                       profile != nullptr ? &stages : nullptr, sched));
      if (profile != nullptr) {
        NodeProfile& np = profile->nodes[&node];
        np.meter_delta = MeterDelta(MeterSnapshot(source_), before);
        np.stages = std::move(stages);
      }
      ExecutionResult result;
      result.schema = std::move(joined.schema);
      result.rows = std::move(joined.rows);
      return result;
    }
    case PlanNode::Kind::kRelationalJoin: {
      TEXTJOIN_ASSIGN_OR_RETURN(
          ExecutionResult lhs,
          Exec(*node.left, query, profile, policy, sched));
      TEXTJOIN_ASSIGN_OR_RETURN(
          ExecutionResult rhs,
          Exec(*node.right, query, profile, policy, sched));
      ExprPtr residual;
      std::vector<ExprPtr> residual_parts;
      for (const ExprPtr& c : node.conjuncts) {
        residual_parts.push_back(c->Clone());
      }
      if (!residual_parts.empty()) {
        residual = residual_parts.size() == 1
                       ? std::move(residual_parts[0])
                       : And(std::move(residual_parts));
      }
      auto left_op =
          std::make_unique<RowsSource>(lhs.schema, std::move(lhs.rows));
      auto right_op =
          std::make_unique<RowsSource>(rhs.schema, std::move(rhs.rows));
      OperatorPtr join;
      if (node.use_hash) {
        join = std::make_unique<HashJoin>(std::move(left_op),
                                          std::move(right_op),
                                          node.hash_keys, std::move(residual));
      } else {
        join = std::make_unique<NestedLoopJoin>(
            std::move(left_op), std::move(right_op), std::move(residual));
      }
      ExecutionResult result;
      result.schema = join->schema();
      result.rows = DrainOperator(*join);
      return result;
    }
  }
  return Status::Internal("unknown plan node kind");
}


namespace {

/// Applies GROUP BY + aggregates on a materialized (joined) result: the
/// output schema becomes the group-by columns followed by one column per
/// aggregate. Without group-by columns, a single global group (even when
/// the input is empty, per SQL: COUNT(*) over nothing is 0).
Status ApplyAggregation(const FederatedQuery& query, ExecutionResult& out) {
  if (query.aggregates.empty()) return Status::OK();
  std::vector<size_t> group_cols;
  Schema agg_schema;
  for (const std::string& ref : query.group_by) {
    TEXTJOIN_ASSIGN_OR_RETURN(size_t idx, out.schema.Resolve(ref));
    group_cols.push_back(idx);
    agg_schema.AddColumn(out.schema.column(idx));
  }
  std::vector<size_t> agg_cols(query.aggregates.size(), 0);
  for (size_t a = 0; a < query.aggregates.size(); ++a) {
    const AggregateItem& agg = query.aggregates[a];
    if (agg.kind != AggregateItem::Kind::kCountStar) {
      TEXTJOIN_ASSIGN_OR_RETURN(size_t idx, out.schema.Resolve(agg.column));
      agg_cols[a] = idx;
    }
    ValueType type;
    switch (agg.kind) {
      case AggregateItem::Kind::kCountStar:
      case AggregateItem::Kind::kCount:
        type = ValueType::kInt64;
        break;
      case AggregateItem::Kind::kSum:
      case AggregateItem::Kind::kAvg:
        type = ValueType::kDouble;
        break;
      default:
        type = out.schema.column(agg_cols[a]).type;
        break;
    }
    agg_schema.AddColumn(Column{"", agg.Name(), type});
  }

  struct GroupState {
    std::vector<int64_t> counts;
    std::vector<Value> mins;
    std::vector<Value> maxs;
    std::vector<double> sums;
  };
  std::map<Row, GroupState> groups;  // ordered => deterministic output
  if (query.group_by.empty()) {
    groups[Row{}] = GroupState{};  // the global group always exists
  }
  for (const Row& row : out.rows) {
    GroupState& state = groups[ProjectRow(row, group_cols)];
    state.counts.resize(query.aggregates.size(), 0);
    state.mins.resize(query.aggregates.size());
    state.maxs.resize(query.aggregates.size());
    state.sums.resize(query.aggregates.size(), 0.0);
    for (size_t a = 0; a < query.aggregates.size(); ++a) {
      const AggregateItem& agg = query.aggregates[a];
      if (agg.kind == AggregateItem::Kind::kCountStar) {
        ++state.counts[a];
        continue;
      }
      const Value& v = row.at(agg_cols[a]);
      if (v.is_null()) continue;  // SQL: aggregates skip NULLs
      ++state.counts[a];
      if (state.mins[a].is_null() || v < state.mins[a]) state.mins[a] = v;
      if (state.maxs[a].is_null() || v > state.maxs[a]) state.maxs[a] = v;
      if ((agg.kind == AggregateItem::Kind::kSum ||
           agg.kind == AggregateItem::Kind::kAvg) &&
          (v.type() == ValueType::kInt64 ||
           v.type() == ValueType::kDouble)) {
        state.sums[a] += v.NumericValue();
      }
    }
  }
  ExecutionResult aggregated;
  aggregated.schema = std::move(agg_schema);
  for (auto& [key, state] : groups) {
    Row row = key;
    state.counts.resize(query.aggregates.size(), 0);
    state.mins.resize(query.aggregates.size());
    state.maxs.resize(query.aggregates.size());
    for (size_t a = 0; a < query.aggregates.size(); ++a) {
      switch (query.aggregates[a].kind) {
        case AggregateItem::Kind::kCountStar:
        case AggregateItem::Kind::kCount:
          row.push_back(Value::Int(state.counts[a]));
          break;
        case AggregateItem::Kind::kMin:
          row.push_back(state.mins[a]);
          break;
        case AggregateItem::Kind::kMax:
          row.push_back(state.maxs[a]);
          break;
        case AggregateItem::Kind::kSum:
          row.push_back(state.counts[a] == 0 ? Value::Null()
                                             : Value::Real(state.sums[a]));
          break;
        case AggregateItem::Kind::kAvg:
          row.push_back(state.counts[a] == 0
                            ? Value::Null()
                            : Value::Real(state.sums[a] /
                                          static_cast<double>(
                                              state.counts[a])));
          break;
      }
    }
    aggregated.rows.push_back(std::move(row));
  }
  out = std::move(aggregated);
  return Status::OK();
}

/// Applies SELECT DISTINCT / ORDER BY / LIMIT on a materialized result.
Status ApplyDecorations(const FederatedQuery& query, ExecutionResult& out) {
  if (query.distinct) {
    std::unordered_set<Row, RowHash, RowEq> seen;
    std::vector<Row> kept;
    for (Row& row : out.rows) {
      if (seen.insert(row).second) kept.push_back(std::move(row));
    }
    out.rows = std::move(kept);
  }
  if (!query.order_by.empty()) {
    std::vector<size_t> keys;
    for (const std::string& ref : query.order_by) {
      TEXTJOIN_ASSIGN_OR_RETURN(size_t idx, out.schema.Resolve(ref));
      keys.push_back(idx);
    }
    std::stable_sort(out.rows.begin(), out.rows.end(),
                     [&keys](const Row& a, const Row& b) {
                       return CompareRows(ProjectRow(a, keys),
                                          ProjectRow(b, keys)) < 0;
                     });
  }
  if (query.limit != FederatedQuery::kNoLimit &&
      out.rows.size() > query.limit) {
    out.rows.resize(query.limit);
  }
  return Status::OK();
}

}  // namespace

Result<ExecutionResult> PlanExecutor::Execute(const PlanNode& root,
                                              const FederatedQuery& query,
                                              ExecutionProfile* profile,
                                              DegradationReport* degradation) {
  AtomicDegradation sink;
  FaultPolicy policy;
  policy.mode = options_.failure_mode;
  policy.degradation = &sink;
  // One scheduler for the whole plan: every probe reducer and the foreign
  // join register their stages on it, so a multi-join PrL plan executes as
  // one composed DAG sharing the pool, policy, and failure selection.
  std::optional<pipeline::StageScheduler> sched;
  if (source_ != nullptr) {
    sched.emplace(pool_, *source_, policy);
    if (options_.deadline != std::chrono::steady_clock::time_point::max()) {
      sched->SetDeadline(options_.deadline, options_.clock);
    }
    if (options_.cancel.valid()) {
      sched->SetCancelToken(options_.cancel);
    }
  }
  // The driving thread participates in every drain; give it the same
  // ambient token its spawned units get, so inline stages and the
  // connector waits under them observe cancellation too.
  std::optional<CancelScope> cancel_scope;
  if (options_.cancel.valid()) cancel_scope.emplace(options_.cancel);
  Result<ExecutionResult> executed =
      Exec(root, query, profile, policy, sched ? &*sched : nullptr);
  if (profile != nullptr && sched) {
    profile->overload.shed_operations = sched->shed_operations();
    profile->overload.cancelled_operations = sched->cancelled_operations();
  }
  if (degradation != nullptr) *degradation = sink.Snapshot();
  TEXTJOIN_ASSIGN_OR_RETURN(ExecutionResult result, std::move(executed));
  if (!query.aggregates.empty()) {
    TEXTJOIN_RETURN_IF_ERROR(ApplyAggregation(query, result));
    TEXTJOIN_RETURN_IF_ERROR(ApplyDecorations(query, result));
    return result;
  }
  // SELECT *: project onto the canonical column order (FROM-list order,
  // then the text relation), independent of the join order the plan chose.
  std::vector<std::string> output_refs = query.output_columns;
  if (output_refs.empty()) {
    for (const RelationRef& rel : query.relations) {
      TEXTJOIN_ASSIGN_OR_RETURN(Table * table,
                                catalog_->GetTable(rel.table_name));
      for (const Column& col : table->schema().columns()) {
        output_refs.push_back(rel.name() + "." + col.name);
      }
    }
    if (query.has_text_relation) {
      // Named so the Schema outlives the loop (a temporary would be
      // destroyed before the range-for body runs, pre-C++23).
      const Schema text_schema = query.text.ToSchema();
      for (const Column& col : text_schema.columns()) {
        output_refs.push_back(query.text.alias + "." + col.name);
      }
    }
  }
  std::vector<size_t> indices;
  Schema projected;
  for (const std::string& ref : output_refs) {
    TEXTJOIN_ASSIGN_OR_RETURN(size_t idx, result.schema.Resolve(ref));
    indices.push_back(idx);
    projected.AddColumn(result.schema.column(idx));
  }
  ExecutionResult out;
  out.schema = std::move(projected);
  out.rows.reserve(result.rows.size());
  for (const Row& row : result.rows) {
    out.rows.push_back(ProjectRow(row, indices));
  }
  TEXTJOIN_RETURN_IF_ERROR(ApplyDecorations(query, out));
  return out;
}

Result<ExecutionResult> ReferenceExecute(
    const FederatedQuery& query, const Catalog& catalog,
    const std::vector<Document>& all_documents) {
  // 1. Cross product of all relations.
  Schema schema;
  std::vector<Row> rows = {Row{}};
  for (const RelationRef& rel : query.relations) {
    TEXTJOIN_ASSIGN_OR_RETURN(Table * table,
                              catalog.GetTable(rel.table_name));
    const Schema rel_schema = table->schema().WithQualifier(rel.name());
    schema = schema.Concat(rel_schema);
    std::vector<Row> next;
    next.reserve(rows.size() * table->num_rows());
    for (const Row& acc : rows) {
      for (const Row& row : table->rows()) {
        next.push_back(ConcatRows(acc, row));
      }
    }
    rows = std::move(next);
  }
  // 2. Relational predicates.
  for (const ExprPtr& pred : query.relational_predicates) {
    ExprPtr bound = pred->Clone();
    TEXTJOIN_RETURN_IF_ERROR(bound->Bind(schema));
    std::vector<Row> kept;
    for (Row& row : rows) {
      if (ValueIsTrue(bound->Eval(row))) kept.push_back(std::move(row));
    }
    rows = std::move(kept);
  }
  ExecutionResult joined;
  if (!query.has_text_relation) {
    joined.schema = schema;
    joined.rows = std::move(rows);
  } else {
    // 3. Cross with every document, filtering text predicates with the
    // shared relational-side matcher.
    std::vector<size_t> join_cols;
    for (const TextJoinPredicate& pred : query.text_joins) {
      TEXTJOIN_ASSIGN_OR_RETURN(size_t idx, schema.Resolve(pred.column_ref));
      join_cols.push_back(idx);
    }
    joined.schema = schema.Concat(query.text.ToSchema());
    for (const Document& doc : all_documents) {
      bool sel_ok = true;
      for (const TextSelection& sel : query.text_selections) {
        if (!TermMatchesFieldText(
                sel.term, JoinFieldValues(doc.FieldValues(sel.field)))) {
          sel_ok = false;
          break;
        }
      }
      if (!sel_ok) continue;
      Row doc_row;
      doc_row.push_back(Value::Str(doc.docid));
      for (const std::string& field : query.text.fields) {
        doc_row.push_back(Value::Str(JoinFieldValues(doc.FieldValues(field))));
      }
      for (const Row& row : rows) {
        bool join_ok = true;
        for (size_t p = 0; p < query.text_joins.size(); ++p) {
          const Value& v = row.at(join_cols[p]);
          if (v.type() != ValueType::kString ||
              !TermMatchesFieldText(
                  v.AsString(),
                  JoinFieldValues(
                      doc.FieldValues(query.text_joins[p].field)))) {
            join_ok = false;
            break;
          }
        }
        if (join_ok) joined.rows.push_back(ConcatRows(row, doc_row));
      }
    }
  }
  // 4. Aggregation / projection / decorations.
  if (!query.aggregates.empty()) {
    TEXTJOIN_RETURN_IF_ERROR(ApplyAggregation(query, joined));
    TEXTJOIN_RETURN_IF_ERROR(ApplyDecorations(query, joined));
    return joined;
  }
  if (query.output_columns.empty()) {
    TEXTJOIN_RETURN_IF_ERROR(ApplyDecorations(query, joined));
    return joined;
  }
  std::vector<size_t> indices;
  Schema projected;
  for (const std::string& ref : query.output_columns) {
    TEXTJOIN_ASSIGN_OR_RETURN(size_t idx, joined.schema.Resolve(ref));
    indices.push_back(idx);
    projected.AddColumn(joined.schema.column(idx));
  }
  ExecutionResult out;
  out.schema = std::move(projected);
  for (const Row& row : joined.rows) {
    out.rows.push_back(ProjectRow(row, indices));
  }
  TEXTJOIN_RETURN_IF_ERROR(ApplyDecorations(query, out));
  return out;
}


namespace {

void RenderAnalyze(const PlanNode& node, const FederatedQuery& query,
                   const ExecutionProfile& profile, const CostParams& params,
                   int indent, std::string& out) {
  // Reuse the plan's own one-node rendering by taking the first line of its
  // ToString and appending the actuals.
  const std::string rendered = node.ToString(query, indent);
  const size_t eol = rendered.find('\n');
  out += rendered.substr(0, eol);
  auto it = profile.nodes.find(&node);
  if (it != profile.nodes.end()) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), " (actual rows=%zu",
                  it->second.actual_rows);
    out += buf;
    const double seconds = it->second.meter_delta.SimulatedSeconds(params);
    if (seconds > 0) {
      std::snprintf(buf, sizeof(buf), " text-cost=%.2fs [%s]", seconds,
                    it->second.meter_delta.ToString().c_str());
      out += buf;
    }
    out += ")";
  }
  out += "\n";
  // Pipeline-backed nodes (foreign join / probe) break down into their
  // stages: one indented line per stage with wall-clock and meter deltas.
  if (it != profile.nodes.end() && !it->second.stages.empty()) {
    const std::string pad((indent + 1) * 2, ' ');
    for (const pipeline::StageStats& stage : it->second.stages.stages) {
      out += pad;
      out += "| ";
      out += stage.ToString();
      out += "\n";
    }
    // Cross-query cache traffic summed over the node's stages, on its own
    // line next to the stage lines. Rendered only when the node touched a
    // cache at all, so cache-off output is byte-identical to before.
    uint64_t hits = 0, misses = 0, coalesced = 0;
    for (const pipeline::StageStats& stage : it->second.stages.stages) {
      hits += stage.cache_hits;
      misses += stage.cache_misses;
      coalesced += stage.cache_coalesced;
    }
    if (hits + misses + coalesced != 0) {
      out += pad;
      out += "| cache hits=" + std::to_string(hits) +
             " misses=" + std::to_string(misses) +
             " coalesced=" + std::to_string(coalesced) + "\n";
    }
  }
  if (node.left != nullptr) {
    RenderAnalyze(*node.left, query, profile, params, indent + 1, out);
  }
  if (node.right != nullptr) {
    RenderAnalyze(*node.right, query, profile, params, indent + 1, out);
  }
}

}  // namespace

std::string ExplainAnalyze(const PlanNode& root, const FederatedQuery& query,
                           const ExecutionProfile& profile,
                           const CostParams& params) {
  std::string out;
  RenderAnalyze(root, query, profile, params, 0, out);
  // Query-global overload account, rendered only when the layer did
  // anything (overload-off output stays byte-identical to before).
  if (!profile.overload.empty()) {
    out += "| overload " + profile.overload.ToString() + "\n";
  }
  // Per-shard-replica physical attribution, present only for sharded
  // topologies (single-backend output stays byte-identical).
  for (const ShardReplicaActivity& replica : profile.shards.replicas) {
    out += "| shard " + replica.ToString() + "\n";
  }
  return out;
}

}  // namespace textjoin
