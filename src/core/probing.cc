#include "core/join_method_impls.h"

#include <map>
#include <unordered_map>

#include "core/probe_cache.h"

namespace textjoin::internal {

namespace {

/// Extracts the probe-subset terms from the full-key terms (terms are
/// ordered by ascending predicate index; the probe mask selects a subset of
/// those indices).
std::vector<std::string> ProbeKeyOf(const std::vector<std::string>& full_terms,
                                    PredicateMask probe_mask,
                                    size_t num_predicates) {
  std::vector<std::string> key;
  size_t term_index = 0;
  for (size_t i = 0; i < num_predicates; ++i) {
    if ((probe_mask & (1u << i)) != 0) key.push_back(full_terms[term_index]);
    ++term_index;
  }
  return key;
}

Row TermsToRow(const std::vector<std::string>& terms) {
  Row row;
  row.reserve(terms.size());
  for (const std::string& t : terms) row.push_back(Value::Str(t));
  return row;
}

}  // namespace

Result<ForeignJoinResult> ExecutePTS(const ResolvedSpec& rspec,
                                     const std::vector<Row>& left_rows,
                                     TextSource& source, PredicateMask mask,
                                     ThreadPool* pool,
                                     const FaultPolicy& policy) {
  const ForeignJoinSpec& spec = *rspec.spec;
  TEXTJOIN_RETURN_IF_ERROR(ValidateProbeMask(spec, mask));
  const PredicateMask all = FullMask(spec.joins.size());
  ForeignJoinResult result;
  result.schema = rspec.output_schema;

  const auto groups = GroupByTerms(rspec, left_rows, all);

  // How many distinct full-key combinations share each probe key: a probe
  // is only worth sending if at least one *other* combination could reuse
  // its outcome (the paper's refinement for grouped input).
  std::map<std::vector<std::string>, size_t> remaining_sharers;
  for (const auto& [terms, rows] : groups) {
    ++remaining_sharers[ProbeKeyOf(terms, mask, spec.joins.size())];
  }

  // The search/probe sequence is inherently serial: whether a probe is
  // sent at all depends on the outcomes cached for *earlier* combinations,
  // and parallelizing it would change which invocations are issued (and so
  // the meter — the paper's core artifact). Only the long-form fetches of
  // each successful search overlap across the pool.
  ProbeCache cache;
  for (const auto& [terms, row_indices] : groups) {
    const std::vector<std::string> probe_terms =
        ProbeKeyOf(terms, mask, spec.joins.size());
    const Row probe_key = TermsToRow(probe_terms);
    --remaining_sharers[probe_terms];

    const std::optional<bool> cached = cache.Lookup(probe_key);
    if (cached.has_value() && !*cached) continue;  // Known fail-query.

    // Full tuple-substitution search for this combination.
    TextQueryPtr search = BuildSearch(rspec, terms, all);
    Result<std::vector<std::string>> searched = source.Search(*search);
    if (!searched.ok()) {
      // Best-effort: drop the combination — and learn nothing for the
      // cache (the outcome is unknown, so no probe is sent either).
      TEXTJOIN_RETURN_IF_ERROR(HandleSourceFailure(
          policy, searched.status(), /*affects_completeness=*/true));
      continue;
    }
    const std::vector<std::string>& docids = *searched;
    if (!docids.empty()) {
      // A successful full query implies the probe would succeed; remember
      // it without spending an invocation.
      cache.Insert(probe_key, true);
      TEXTJOIN_ASSIGN_OR_RETURN(
          std::vector<Row> doc_rows,
          FetchDocRows(rspec, docids, source, pool, policy));
      for (size_t r : row_indices) {
        for (const Row& doc_row : doc_rows) {
          result.rows.push_back(ConcatRows(left_rows[r], doc_row));
        }
      }
      continue;
    }
    // The full query failed. Send the probe (selections + probe-column
    // predicates, short form) so later agreeing combinations can be
    // skipped — but only if some combination still shares this probe key
    // and the outcome is not already cached.
    if (!cached.has_value() && remaining_sharers[probe_terms] > 0) {
      TextQueryPtr probe = BuildSearch(rspec, probe_terms, mask);
      Result<std::vector<std::string>> probe_docs = source.Search(*probe);
      if (!probe_docs.ok()) {
        // The probe is purely advisory: its loss costs future skip
        // opportunities, never rows, so a recovering policy absorbs it.
        TEXTJOIN_RETURN_IF_ERROR(HandleSourceFailure(
            policy, probe_docs.status(), /*affects_completeness=*/false));
        continue;
      }
      cache.Insert(probe_key, !probe_docs->empty());
    }
  }
  return result;
}

Result<ForeignJoinResult> ExecutePRTP(const ResolvedSpec& rspec,
                                      const std::vector<Row>& left_rows,
                                      TextSource& source, PredicateMask mask,
                                      ThreadPool* pool,
                                      const FaultPolicy& policy) {
  const ForeignJoinSpec& spec = *rspec.spec;
  TEXTJOIN_RETURN_IF_ERROR(ValidateProbeMask(spec, mask));
  const PredicateMask all = FullMask(spec.joins.size());
  ForeignJoinResult result;
  result.schema = rspec.output_schema;

  // One probe per distinct probe-column combination; the documents each
  // successful probe matched are fetched (long form, deduplicated across
  // probes) and matched against the agreeing tuples in SQL. Three phases:
  //
  //  1. every probe is independent → issued concurrently;
  //  2. a serial walk in group order assigns each docid its first-seen
  //     fetch slot (the same distinct set, in the same order, that the
  //     serial interleaved loop would fetch);
  //  3. the distinct fetches overlap, and assembly replays group order.
  //
  // Meter totals are therefore byte-identical to serial execution.
  const auto groups = GroupByTerms(rspec, left_rows, mask);
  std::vector<const std::vector<size_t>*> group_rows;
  std::vector<TextQueryPtr> probes;
  group_rows.reserve(groups.size());
  probes.reserve(groups.size());
  for (const auto& [probe_terms, row_indices] : groups) {
    probes.push_back(BuildSearch(rspec, probe_terms, mask));
    group_rows.push_back(&row_indices);
  }

  std::vector<std::vector<std::string>> docids_per_group(groups.size());
  TEXTJOIN_RETURN_IF_ERROR(
      ParallelStatusFor(pool, groups.size(), [&](size_t g) -> Status {
        Result<std::vector<std::string>> searched =
            source.Search(*probes[g]);
        if (!searched.ok()) {
          // Best-effort: the group's rows are missing from the answer.
          return HandleSourceFailure(policy, searched.status(),
                                     /*affects_completeness=*/true);
        }
        docids_per_group[g] = *std::move(searched);
        return Status::OK();
      }));

  std::vector<std::string> distinct_docids;
  std::unordered_map<std::string, size_t> docid_slot;
  for (const std::vector<std::string>& docids : docids_per_group) {
    for (const std::string& docid : docids) {
      if (docid_slot.emplace(docid, distinct_docids.size()).second) {
        distinct_docids.push_back(docid);
      }
    }
  }
  // FetchDocs keeps the slots aligned with distinct_docids even when a
  // best-effort policy skips failed fetches (placeholder Documents), so
  // docid_slot indexing below stays valid.
  TEXTJOIN_ASSIGN_OR_RETURN(std::vector<Document> docs,
                            FetchDocs(distinct_docids, source, pool, policy));

  for (size_t g = 0; g < groups.size(); ++g) {
    const std::vector<std::string>& docids = docids_per_group[g];
    if (docids.empty()) continue;  // Fail: every agreeing tuple is skipped.
    uint64_t scanned = 0;
    for (const std::string& docid : docids) {
      const Document& doc = docs[docid_slot.at(docid)];
      if (IsPlaceholderDoc(doc)) continue;  // Fetch was skipped.
      ++scanned;
      Row doc_row = DocumentToRow(spec.text, doc);
      for (size_t r : *group_rows[g]) {
        // The probe guaranteed the mask predicates; check the remainder.
        if (DocMatchesRow(rspec, left_rows[r], doc, all & ~mask)) {
          result.rows.push_back(ConcatRows(left_rows[r], doc_row));
        }
      }
    }
    ChargeRelationalMatches(source, scanned);
  }
  return result;
}

}  // namespace textjoin::internal

namespace textjoin {

Result<std::vector<Row>> ProbeSemiJoinReduce(const ForeignJoinSpec& spec,
                                             const std::vector<Row>& left_rows,
                                             TextSource& source,
                                             PredicateMask probe_mask,
                                             ThreadPool* pool,
                                             const FaultPolicy& policy) {
  TEXTJOIN_RETURN_IF_ERROR(internal::ValidateProbeMask(spec, probe_mask));
  TEXTJOIN_ASSIGN_OR_RETURN(internal::ResolvedSpec rspec,
                            internal::ResolveSpec(spec));
  const auto groups = internal::GroupByTerms(rspec, left_rows, probe_mask);
  std::vector<TextQueryPtr> probes;
  std::vector<const std::vector<size_t>*> group_rows;
  probes.reserve(groups.size());
  group_rows.reserve(groups.size());
  for (const auto& [probe_terms, row_indices] : groups) {
    probes.push_back(internal::BuildSearch(rspec, probe_terms, probe_mask));
    group_rows.push_back(&row_indices);
  }
  // Every distinct combination's probe is independent; overlap them.
  std::vector<char> matched(groups.size(), 0);
  TEXTJOIN_RETURN_IF_ERROR(internal::ParallelStatusFor(
      pool, groups.size(), [&](size_t g) -> Status {
        Result<std::vector<std::string>> docids = source.Search(*probes[g]);
        if (!docids.ok()) {
          // The reducer is advisory: an unknown probe outcome keeps the
          // rows (a weaker reduction, never a wrong answer), so any
          // recovering policy absorbs the failure.
          TEXTJOIN_RETURN_IF_ERROR(internal::HandleSourceFailure(
              policy, docids.status(), /*affects_completeness=*/false));
          matched[g] = 1;
          return Status::OK();
        }
        matched[g] = docids->empty() ? 0 : 1;
        return Status::OK();
      }));
  std::vector<bool> keep(left_rows.size(), false);
  for (size_t g = 0; g < groups.size(); ++g) {
    if (!matched[g]) continue;
    for (size_t r : *group_rows[g]) keep[r] = true;
  }
  std::vector<Row> survivors;
  for (size_t r = 0; r < left_rows.size(); ++r) {
    if (keep[r]) survivors.push_back(left_rows[r]);
  }
  return survivors;
}

}  // namespace textjoin
