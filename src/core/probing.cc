#include <map>
#include <optional>
#include <unordered_map>

#include "core/pipeline.h"
#include "core/probe_cache.h"

namespace textjoin::pipeline {

namespace {

/// Extracts the probe-subset terms from the full-key terms (terms are
/// ordered by ascending predicate index; the probe mask selects a subset of
/// those indices).
std::vector<std::string> ProbeKeyOf(const std::vector<std::string>& full_terms,
                                    PredicateMask probe_mask,
                                    size_t num_predicates) {
  std::vector<std::string> key;
  size_t term_index = 0;
  for (size_t i = 0; i < num_predicates; ++i) {
    if ((probe_mask & (1u << i)) != 0) key.push_back(full_terms[term_index]);
    ++term_index;
  }
  return key;
}

Row TermsToRow(const std::vector<std::string>& terms) {
  Row row;
  row.reserve(terms.size());
  for (const std::string& t : terms) row.push_back(Value::Str(t));
  return row;
}

}  // namespace

/// Section 3.3 — probing + tuple substitution, with the probe cache and
/// send-probe-only-after-failure policy of the paper's algorithm.
///
/// The search/probe sequence is inherently serial: whether a probe is sent
/// at all depends on the outcomes cached for *earlier* combinations, and
/// parallelizing it would change which invocations are issued (and so the
/// meter — the paper's core artifact). The chain therefore runs as ONE
/// SearchDispatch unit — but it never waits for fetches: each successful
/// search spawns its fetch units and moves straight to the next
/// combination, so the serial search chain overlaps all document
/// retrieval. (The old per-group fetch barrier is gone.)
Result<ForeignJoinResult> RunPTS(MethodContext& ctx) {
  const ResolvedSpec& rspec = ctx.rspec;
  const ForeignJoinSpec& spec = *rspec.spec;
  StageScheduler& sched = ctx.sched;
  const PredicateMask all = FullMask(spec.joins.size());
  const PredicateMask mask = ctx.probe_mask;

  const StageScheduler::StageId sd_keys = ctx.Stage(StageKind::kDistinctKeys);
  const StageScheduler::StageId sd_probe = ctx.Stage(StageKind::kProbeFilter);
  const StageScheduler::StageId sd_build = ctx.Stage(StageKind::kQueryBuild);
  const StageScheduler::StageId sd_search =
      ctx.Stage(StageKind::kSearchDispatch);
  const StageScheduler::StageId sd_fetch = ctx.Stage(StageKind::kFetch);
  const StageScheduler::StageId sd_assemble = ctx.Stage(StageKind::kAssemble);

  KeyGroups groups;
  {
    ScopedStageTimer timer(sched, sd_keys, 1);
    groups = GroupRowsByTerms(rspec, ctx.left_rows, all);
  }
  std::vector<TextQueryPtr> searches;
  {
    ScopedStageTimer timer(sched, sd_build, groups.size());
    searches.reserve(groups.size());
    for (const std::vector<std::string>& terms : groups.terms) {
      searches.push_back(BuildSearch(rspec, terms, all));
    }
  }
  // How many distinct full-key combinations share each probe key: a probe
  // is only worth sending if at least one *other* combination could reuse
  // its outcome (the paper's refinement for grouped input).
  std::vector<std::vector<std::string>> probe_keys(groups.size());
  std::map<std::vector<std::string>, size_t> remaining_sharers;
  {
    ScopedStageTimer timer(sched, sd_probe, groups.size());
    for (size_t g = 0; g < groups.size(); ++g) {
      probe_keys[g] = ProbeKeyOf(groups.terms[g], mask, spec.joins.size());
      ++remaining_sharers[probe_keys[g]];
    }
  }

  DocFetcher fetcher(sched, sd_fetch);
  std::vector<char> group_hit(groups.size(), 0);
  std::vector<std::vector<size_t>> slots_per_group(groups.size());
  std::vector<std::vector<std::string>> docids_per_group(groups.size());
  sched.Spawn(sd_search, 0, [&]() -> Status {
    // The per-query probe cache of Section 3.3, seeded from the session
    // store (text_cache.h) when one is attached: outcomes learned by
    // EARLIER queries skip full searches / probe sends here, and outcomes
    // discovered here are recorded for later queries. With no session
    // store (or a cold one) the behavior is bit-for-bit the original.
    ProbeCache cache;
    CachingTextSource* session = sched.caching();
    for (size_t g = 0; g < groups.size(); ++g) {
      const std::vector<std::string>& probe_terms = probe_keys[g];
      const Row probe_key = TermsToRow(probe_terms);
      --remaining_sharers[probe_terms];

      std::optional<bool> cached = cache.Lookup(probe_key);
      TextQueryPtr probe;
      CachingTextSource::ProbeTicket session_ticket;
      bool session_known = false;
      if (session != nullptr && !cached.has_value()) {
        probe = BuildSearch(rspec, probe_terms, mask);
        session_ticket = session->BeginProbe(*probe);
        if (session_ticket.cached.has_value()) {
          cached = session_ticket.cached;
          session_known = true;
          cache.Insert(probe_key, *cached);
        }
      }
      if (cached.has_value() && !*cached) {  // Known fail-query.
        if (session_known) {
          // The session store saved the full search for this combination.
          session->NoteProbeHit();
          sched.NoteCacheHit(sd_search);
        }
        continue;
      }

      // Full tuple-substitution search for this combination.
      Result<std::vector<std::string>> searched =
          sched.Search(sd_search, *searches[g]);
      if (!searched.ok()) {
        // Best-effort: drop the combination — and learn nothing for the
        // cache (the outcome is unknown, so no probe is sent either).
        TEXTJOIN_RETURN_IF_ERROR(sched.HandleSourceFailure(
            searched.status(), /*affects_completeness=*/true));
        continue;
      }
      if (!searched->empty()) {
        // A successful full query implies the probe would succeed;
        // remember it without spending an invocation.
        cache.Insert(probe_key, true);
        if (session != nullptr && !session_known && probe != nullptr) {
          session->RecordProbe(*probe, session_ticket.epoch, true);
        }
        group_hit[g] = 1;
        docids_per_group[g] = *std::move(searched);
        if (spec.need_document_fields) {
          slots_per_group[g].reserve(docids_per_group[g].size());
          for (const std::string& docid : docids_per_group[g]) {
            slots_per_group[g].push_back(fetcher.Fetch(docid));
          }
        }
        continue;
      }
      // The full query failed. Send the probe (selections + probe-column
      // predicates, short form) so later agreeing combinations can be
      // skipped — but only if some combination still shares this probe key
      // and the outcome is not already cached.
      if (!cached.has_value() && remaining_sharers[probe_terms] > 0) {
        if (probe == nullptr) probe = BuildSearch(rspec, probe_terms, mask);
        Result<std::vector<std::string>> probe_docs =
            sched.Search(sd_probe, *probe);
        if (!probe_docs.ok()) {
          // The probe is purely advisory: its loss costs future skip
          // opportunities, never rows, so a recovering policy absorbs it.
          TEXTJOIN_RETURN_IF_ERROR(sched.HandleSourceFailure(
              probe_docs.status(), /*affects_completeness=*/false));
          continue;
        }
        cache.Insert(probe_key, !probe_docs->empty());
        if (session != nullptr) {
          session->RecordProbe(*probe, session_ticket.epoch,
                               !probe_docs->empty());
        }
      } else if (session_known && *cached &&
                 remaining_sharers[probe_terms] > 0) {
        // Without the session store a probe would have been sent here
        // (outcome unknown, sharers remain): a second saved invocation.
        session->NoteProbeHit();
        sched.NoteCacheHit(sd_probe);
      }
    }
    return Status::OK();
  });
  TEXTJOIN_RETURN_IF_ERROR(sched.Wait());

  ForeignJoinResult result;
  result.schema = rspec.output_schema;
  ScopedStageTimer timer(sched, sd_assemble, 1);
  for (size_t g = 0; g < groups.size(); ++g) {
    if (!group_hit[g]) continue;
    std::vector<Row> doc_rows;
    if (spec.need_document_fields) {
      doc_rows.reserve(slots_per_group[g].size());
      for (size_t slot : slots_per_group[g]) {
        const Document& doc = fetcher.doc(slot);
        if (IsPlaceholderDoc(doc)) continue;  // Best-effort fetch skip.
        doc_rows.push_back(DocumentToRow(spec.text, doc));
      }
    } else {
      doc_rows.reserve(docids_per_group[g].size());
      for (const std::string& docid : docids_per_group[g]) {
        doc_rows.push_back(DocidOnlyRow(spec.text, docid));
      }
    }
    for (size_t r : groups.rows[g]) {
      for (const Row& doc_row : doc_rows) {
        result.rows.push_back(ConcatRows(ctx.left_rows[r], doc_row));
      }
    }
  }
  return result;
}

/// Section 3.3 — probing + relational text processing: one probe per
/// distinct probe-column combination; the documents each successful probe
/// matched are fetched (long form, deduplicated across probes) and matched
/// against the agreeing tuples in SQL.
///
/// Every probe unit hands its docids to the shared dedup map the moment its
/// answer arrives and spawns fetches for the unclaimed ones — so fetches
/// for early probes overlap the remaining probes. The fetched docid SET is
/// schedule-independent (first-completed wins only the slot number); the
/// deterministic first-seen order and the residual matching are replayed
/// serially in group order after the drain, exactly as the serial
/// interleaved loop would, so rows and meter totals are byte-identical.
Result<ForeignJoinResult> RunPRTP(MethodContext& ctx) {
  const ResolvedSpec& rspec = ctx.rspec;
  const ForeignJoinSpec& spec = *rspec.spec;
  StageScheduler& sched = ctx.sched;
  const PredicateMask all = FullMask(spec.joins.size());
  const PredicateMask mask = ctx.probe_mask;

  const StageScheduler::StageId sd_keys = ctx.Stage(StageKind::kDistinctKeys);
  const StageScheduler::StageId sd_build = ctx.Stage(StageKind::kQueryBuild);
  const StageScheduler::StageId sd_search =
      ctx.Stage(StageKind::kSearchDispatch);
  const StageScheduler::StageId sd_fetch = ctx.Stage(StageKind::kFetch);
  const StageScheduler::StageId sd_match = ctx.Stage(StageKind::kMatch);
  const StageScheduler::StageId sd_assemble = ctx.Stage(StageKind::kAssemble);

  KeyGroups groups;
  {
    ScopedStageTimer timer(sched, sd_keys, 1);
    groups = GroupRowsByTerms(rspec, ctx.left_rows, mask);
  }
  std::vector<TextQueryPtr> probes;
  {
    ScopedStageTimer timer(sched, sd_build, groups.size());
    probes.reserve(groups.size());
    for (const std::vector<std::string>& probe_terms : groups.terms) {
      probes.push_back(BuildSearch(rspec, probe_terms, mask));
    }
  }

  DocFetcher fetcher(sched, sd_fetch);
  std::vector<std::vector<std::string>> docids_per_group(groups.size());
  std::mutex mu;
  std::unordered_map<std::string, size_t> docid_slot;
  for (size_t g = 0; g < groups.size(); ++g) {
    sched.Spawn(sd_search, g, [&, g]() -> Status {
      // Session store (text_cache.h): a probe known to have failed in an
      // earlier query matches no documents, so the whole group drops
      // without a search. (A known-success outcome does not help — the
      // docids are still needed, and those come from the search cache.)
      CachingTextSource* session = sched.caching();
      CachingTextSource::ProbeTicket session_ticket;
      if (session != nullptr) {
        session_ticket = session->BeginProbe(*probes[g]);
        if (session_ticket.cached.has_value() && !*session_ticket.cached) {
          session->NoteProbeHit();
          sched.NoteCacheHit(sd_search);
          return Status::OK();
        }
      }
      Result<std::vector<std::string>> searched =
          sched.Search(sd_search, *probes[g]);
      if (!searched.ok()) {
        // Best-effort: the group's rows are missing from the answer.
        return sched.HandleSourceFailure(searched.status(),
                                         /*affects_completeness=*/true);
      }
      if (session != nullptr && !session_ticket.cached.has_value()) {
        session->RecordProbe(*probes[g], session_ticket.epoch,
                             !searched->empty());
      }
      docids_per_group[g] = *std::move(searched);
      std::lock_guard<std::mutex> lock(mu);
      for (const std::string& docid : docids_per_group[g]) {
        if (docid_slot.count(docid) != 0) continue;
        docid_slot.emplace(docid, fetcher.Fetch(docid));
      }
      return Status::OK();
    });
  }
  TEXTJOIN_RETURN_IF_ERROR(sched.Wait());

  ForeignJoinResult result;
  result.schema = rspec.output_schema;
  // Residual matching is fused with assembly: both replay group order, and
  // the probe already guaranteed the mask predicates. Matching work is
  // charged to the Match stage; the pass's wall-clock to Assemble.
  ScopedStageTimer timer(sched, sd_assemble, 1);
  for (size_t g = 0; g < groups.size(); ++g) {
    const std::vector<std::string>& docids = docids_per_group[g];
    if (docids.empty()) continue;  // Fail: every agreeing tuple is skipped.
    uint64_t scanned = 0;
    for (const std::string& docid : docids) {
      const Document& doc = fetcher.doc(docid_slot.at(docid));
      if (IsPlaceholderDoc(doc)) continue;  // Fetch was skipped.
      ++scanned;
      Row doc_row = DocumentToRow(spec.text, doc);
      for (size_t r : groups.rows[g]) {
        if (DocMatchesRow(rspec, ctx.left_rows[r], doc, all & ~mask)) {
          result.rows.push_back(ConcatRows(ctx.left_rows[r], doc_row));
        }
      }
    }
    sched.ChargeRelationalMatches(sd_match, scanned);
  }
  return result;
}

}  // namespace textjoin::pipeline

namespace textjoin {

Result<std::vector<Row>> ProbeSemiJoinReduce(
    const ForeignJoinSpec& spec, const std::vector<Row>& left_rows,
    TextSource& source, PredicateMask probe_mask, ThreadPool* pool,
    const FaultPolicy& policy, pipeline::PipelineProfile* stage_profile,
    pipeline::StageScheduler* scheduler) {
  using pipeline::ScopedStageTimer;
  using pipeline::StageKind;
  using pipeline::StageScheduler;
  TEXTJOIN_RETURN_IF_ERROR(pipeline::ValidateProbeMask(spec, probe_mask));
  TEXTJOIN_ASSIGN_OR_RETURN(pipeline::ResolvedSpec rspec,
                            pipeline::ResolveSpec(spec));
  std::optional<StageScheduler> owned;
  if (scheduler == nullptr) {
    owned.emplace(pool, source, policy);
    scheduler = &*owned;
  }
  const StageScheduler::StageId sd_keys = scheduler->AddStage(
      {StageKind::kDistinctKeys, "probe-cols," + MaskToString(probe_mask)});
  const StageScheduler::StageId sd_build =
      scheduler->AddStage({StageKind::kQueryBuild, "per-probe"});
  const StageScheduler::StageId sd_probe =
      scheduler->AddStage({StageKind::kProbeFilter, "reducer"});

  pipeline::KeyGroups groups;
  {
    ScopedStageTimer timer(*scheduler, sd_keys, 1);
    groups = pipeline::GroupRowsByTerms(rspec, left_rows, probe_mask);
  }
  std::vector<TextQueryPtr> probes;
  {
    ScopedStageTimer timer(*scheduler, sd_build, groups.size());
    probes.reserve(groups.size());
    for (const std::vector<std::string>& probe_terms : groups.terms) {
      probes.push_back(pipeline::BuildSearch(rspec, probe_terms, probe_mask));
    }
  }
  // Every distinct combination's probe is independent; overlap them.
  std::vector<char> matched(groups.size(), 0);
  for (size_t g = 0; g < groups.size(); ++g) {
    scheduler->Spawn(sd_probe, g, [&, g, scheduler]() -> Status {
      // The reducer needs only the one-bit outcome, so BOTH session-known
      // outcomes (matched / failed) replace the probe invocation.
      CachingTextSource* session = scheduler->caching();
      CachingTextSource::ProbeTicket session_ticket;
      if (session != nullptr) {
        session_ticket = session->BeginProbe(*probes[g]);
        if (session_ticket.cached.has_value()) {
          session->NoteProbeHit();
          scheduler->NoteCacheHit(sd_probe);
          matched[g] = *session_ticket.cached ? 1 : 0;
          return Status::OK();
        }
      }
      Result<std::vector<std::string>> docids =
          scheduler->Search(sd_probe, *probes[g]);
      if (!docids.ok()) {
        // The reducer is advisory: an unknown probe outcome keeps the
        // rows (a weaker reduction, never a wrong answer), so any
        // recovering policy absorbs the failure.
        TEXTJOIN_RETURN_IF_ERROR(scheduler->HandleSourceFailure(
            docids.status(), /*affects_completeness=*/false));
        matched[g] = 1;
        return Status::OK();
      }
      if (session != nullptr) {
        session->RecordProbe(*probes[g], session_ticket.epoch,
                             !docids->empty());
      }
      matched[g] = docids->empty() ? 0 : 1;
      return Status::OK();
    });
  }
  TEXTJOIN_RETURN_IF_ERROR(scheduler->Wait());

  std::vector<bool> keep(left_rows.size(), false);
  for (size_t g = 0; g < groups.size(); ++g) {
    if (!matched[g]) continue;
    for (size_t r : groups.rows[g]) keep[r] = true;
  }
  std::vector<Row> survivors;
  for (size_t r = 0; r < left_rows.size(); ++r) {
    if (keep[r]) survivors.push_back(left_rows[r]);
  }
  if (stage_profile != nullptr) {
    *stage_profile = scheduler->Profile({sd_keys, sd_build, sd_probe});
  }
  return survivors;
}

}  // namespace textjoin
