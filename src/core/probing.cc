#include "core/join_method_impls.h"

#include <map>
#include <unordered_map>

#include "core/probe_cache.h"

namespace textjoin::internal {

namespace {

/// Extracts the probe-subset terms from the full-key terms (terms are
/// ordered by ascending predicate index; the probe mask selects a subset of
/// those indices).
std::vector<std::string> ProbeKeyOf(const std::vector<std::string>& full_terms,
                                    PredicateMask probe_mask,
                                    size_t num_predicates) {
  std::vector<std::string> key;
  size_t term_index = 0;
  for (size_t i = 0; i < num_predicates; ++i) {
    if ((probe_mask & (1u << i)) != 0) key.push_back(full_terms[term_index]);
    ++term_index;
  }
  return key;
}

Row TermsToRow(const std::vector<std::string>& terms) {
  Row row;
  row.reserve(terms.size());
  for (const std::string& t : terms) row.push_back(Value::Str(t));
  return row;
}

}  // namespace

Result<ForeignJoinResult> ExecutePTS(const ResolvedSpec& rspec,
                                     const std::vector<Row>& left_rows,
                                     TextSource& source, PredicateMask mask) {
  const ForeignJoinSpec& spec = *rspec.spec;
  TEXTJOIN_RETURN_IF_ERROR(ValidateProbeMask(spec, mask));
  const PredicateMask all = FullMask(spec.joins.size());
  ForeignJoinResult result;
  result.schema = rspec.output_schema;

  const auto groups = GroupByTerms(rspec, left_rows, all);

  // How many distinct full-key combinations share each probe key: a probe
  // is only worth sending if at least one *other* combination could reuse
  // its outcome (the paper's refinement for grouped input).
  std::map<std::vector<std::string>, size_t> remaining_sharers;
  for (const auto& [terms, rows] : groups) {
    ++remaining_sharers[ProbeKeyOf(terms, mask, spec.joins.size())];
  }

  ProbeCache cache;
  for (const auto& [terms, row_indices] : groups) {
    const std::vector<std::string> probe_terms =
        ProbeKeyOf(terms, mask, spec.joins.size());
    const Row probe_key = TermsToRow(probe_terms);
    --remaining_sharers[probe_terms];

    const std::optional<bool> cached = cache.Lookup(probe_key);
    if (cached.has_value() && !*cached) continue;  // Known fail-query.

    // Full tuple-substitution search for this combination.
    TextQueryPtr search = BuildSearch(rspec, terms, all);
    TEXTJOIN_ASSIGN_OR_RETURN(std::vector<std::string> docids,
                              source.Search(*search));
    if (!docids.empty()) {
      // A successful full query implies the probe would succeed; remember
      // it without spending an invocation.
      cache.Insert(probe_key, true);
      std::vector<Row> doc_rows;
      doc_rows.reserve(docids.size());
      for (const std::string& docid : docids) {
        if (spec.need_document_fields) {
          TEXTJOIN_ASSIGN_OR_RETURN(Document doc, source.Fetch(docid));
          doc_rows.push_back(DocumentToRow(spec.text, doc));
        } else {
          doc_rows.push_back(DocidOnlyRow(spec.text, docid));
        }
      }
      for (size_t r : row_indices) {
        for (const Row& doc_row : doc_rows) {
          result.rows.push_back(ConcatRows(left_rows[r], doc_row));
        }
      }
      continue;
    }
    // The full query failed. Send the probe (selections + probe-column
    // predicates, short form) so later agreeing combinations can be
    // skipped — but only if some combination still shares this probe key
    // and the outcome is not already cached.
    if (!cached.has_value() && remaining_sharers[probe_terms] > 0) {
      TextQueryPtr probe = BuildSearch(rspec, probe_terms, mask);
      TEXTJOIN_ASSIGN_OR_RETURN(std::vector<std::string> probe_docs,
                                source.Search(*probe));
      cache.Insert(probe_key, !probe_docs.empty());
    }
  }
  return result;
}

Result<ForeignJoinResult> ExecutePRTP(const ResolvedSpec& rspec,
                                      const std::vector<Row>& left_rows,
                                      TextSource& source,
                                      PredicateMask mask) {
  const ForeignJoinSpec& spec = *rspec.spec;
  TEXTJOIN_RETURN_IF_ERROR(ValidateProbeMask(spec, mask));
  const PredicateMask all = FullMask(spec.joins.size());
  ForeignJoinResult result;
  result.schema = rspec.output_schema;

  // One probe per distinct probe-column combination; the documents each
  // successful probe matched are fetched (long form, deduplicated across
  // probes) and matched against the agreeing tuples in SQL.
  const auto groups = GroupByTerms(rspec, left_rows, mask);
  std::unordered_map<std::string, Document> fetched;
  for (const auto& [probe_terms, row_indices] : groups) {
    TextQueryPtr probe = BuildSearch(rspec, probe_terms, mask);
    TEXTJOIN_ASSIGN_OR_RETURN(std::vector<std::string> docids,
                              source.Search(*probe));
    if (docids.empty()) continue;  // Fail: every agreeing tuple is skipped.
    std::vector<const Document*> combo_docs;
    combo_docs.reserve(docids.size());
    for (const std::string& docid : docids) {
      auto it = fetched.find(docid);
      if (it == fetched.end()) {
        TEXTJOIN_ASSIGN_OR_RETURN(Document doc, source.Fetch(docid));
        it = fetched.emplace(docid, std::move(doc)).first;
      }
      combo_docs.push_back(&it->second);
    }
    ChargeRelationalMatches(source, combo_docs.size());
    for (const Document* doc : combo_docs) {
      Row doc_row = DocumentToRow(spec.text, *doc);
      for (size_t r : row_indices) {
        // The probe guaranteed the mask predicates; check the remainder.
        if (DocMatchesRow(rspec, left_rows[r], *doc, all & ~mask)) {
          result.rows.push_back(ConcatRows(left_rows[r], doc_row));
        }
      }
    }
  }
  return result;
}

}  // namespace textjoin::internal

namespace textjoin {

Result<std::vector<Row>> ProbeSemiJoinReduce(const ForeignJoinSpec& spec,
                                             const std::vector<Row>& left_rows,
                                             TextSource& source,
                                             PredicateMask probe_mask) {
  TEXTJOIN_RETURN_IF_ERROR(internal::ValidateProbeMask(spec, probe_mask));
  TEXTJOIN_ASSIGN_OR_RETURN(internal::ResolvedSpec rspec,
                            internal::ResolveSpec(spec));
  const auto groups = internal::GroupByTerms(rspec, left_rows, probe_mask);
  std::vector<bool> keep(left_rows.size(), false);
  for (const auto& [probe_terms, row_indices] : groups) {
    TextQueryPtr probe = internal::BuildSearch(rspec, probe_terms, probe_mask);
    TEXTJOIN_ASSIGN_OR_RETURN(std::vector<std::string> docids,
                              source.Search(*probe));
    if (docids.empty()) continue;
    for (size_t r : row_indices) keep[r] = true;
  }
  std::vector<Row> survivors;
  for (size_t r = 0; r < left_rows.size(); ++r) {
    if (keep[r]) survivors.push_back(left_rows[r]);
  }
  return survivors;
}

}  // namespace textjoin
