#include "core/admission.h"

#include <algorithm>

namespace textjoin {

AdmissionTicket& AdmissionTicket::operator=(AdmissionTicket&& other) noexcept {
  if (this != &other) {
    if (controller_ != nullptr) controller_->Release();
    controller_ = std::exchange(other.controller_, nullptr);
    wait_seconds_ = other.wait_seconds_;
  }
  return *this;
}

AdmissionTicket::~AdmissionTicket() {
  if (controller_ != nullptr) controller_->Release();
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(std::move(options)) {}

AdmissionController::TimePoint AdmissionController::Now() const {
  return options_.clock ? options_.clock()
                        : std::chrono::steady_clock::now();
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
  }
  cv_.notify_all();
}

void AdmissionController::Poke() { cv_.notify_all(); }

Result<AdmissionTicket> AdmissionController::Admit(
    double est_cost_seconds, TimePoint deadline, int priority,
    const CancelToken& token) {
  const TimePoint arrived = Now();
  const int max_concurrent = std::max(1, options_.max_concurrent);
  // Registered BEFORE taking mu_: an already-cancelled token fires the
  // callback inline, and the callback locks mu_ to order its notify
  // against the wait predicate below (lost-wakeup prevention).
  CancelToken::Registration wake;
  if (token.valid()) {
    wake = token.OnCancel([this] {
      std::lock_guard<std::mutex> lock(mu_);
      cv_.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu_);
  const auto cancel_check = [&]() -> Status {
    Status cancel = token.Check();
    if (!cancel.ok()) {
      if (cancel.code() == StatusCode::kCancelled) {
        ++shed_cancelled_;
      } else {
        ++shed_deadline_;  // The token's own deadline: a deadline shed.
      }
    }
    return cancel;
  };
  if (Status cancel = cancel_check(); !cancel.ok()) return cancel;
  // Evaluated on arrival AND at every wakeup while queued: deadlines keep
  // expiring in the queue, and shedding there is exactly the point — a
  // query that cannot finish in time must not reach an execution slot.
  const auto shed_check = [&]() -> Status {
    if (deadline == TimePoint::max()) return Status::OK();
    const TimePoint now = Now();
    if (now > deadline) {
      return Status::DeadlineExceeded("admission: query deadline passed");
    }
    if (options_.cost_scale > 0.0 && est_cost_seconds > 0.0) {
      const auto predicted =
          now + std::chrono::duration_cast<TimePoint::duration>(
                    std::chrono::duration<double>(est_cost_seconds *
                                                  options_.cost_scale));
      if (predicted > deadline) {
        return Status::DeadlineExceeded(
            "admission: remaining deadline cannot cover estimated cost");
      }
    }
    return Status::OK();
  };
  if (Status shed = shed_check(); !shed.ok()) {
    ++shed_deadline_;
    return shed;
  }
  if (running_ < max_concurrent && waiting_.empty()) {
    ++running_;
    ++admitted_;
    max_running_ = std::max<uint64_t>(max_running_, running_);
    return AdmissionTicket(this, 0.0);
  }
  if (waiting_.size() >= options_.max_queue) {
    ++shed_queue_full_;
    return Status::Unavailable("admission queue full; query shed");
  }
  const Waiter me{-priority, next_seq_++};
  waiting_.insert(me);
  ++waits_;
  max_queue_depth_ = std::max<uint64_t>(max_queue_depth_, waiting_.size());
  for (;;) {
    // With an injected clock, timed waits are meaningless (the virtual
    // clock cannot fire them) — sheds are evaluated when a slot frees or
    // the test Poke()s. On the real clock, a deadline wakes itself; the
    // token's OnCancel callback wakes cancellations.
    TimePoint wake_at = deadline;
    if (!options_.clock) wake_at = std::min(wake_at, token.wait_deadline());
    if (!options_.clock && wake_at != TimePoint::max()) {
      cv_.wait_until(lock, wake_at);
    } else {
      cv_.wait(lock);
    }
    if (Status cancel = cancel_check(); !cancel.ok()) {
      // Queued entries shed immediately on cancel — nobody is waiting for
      // this query anymore, so it must not ripen into an execution slot.
      waiting_.erase(me);
      cv_.notify_all();
      return cancel;
    }
    if (Status shed = shed_check(); !shed.ok()) {
      waiting_.erase(me);
      ++shed_deadline_;
      // The head may have changed; let the next waiter re-evaluate.
      cv_.notify_all();
      return shed;
    }
    if (running_ < max_concurrent && *waiting_.begin() == me) {
      waiting_.erase(me);
      ++running_;
      ++admitted_;
      max_running_ = std::max<uint64_t>(max_running_, running_);
      const double waited =
          std::chrono::duration<double>(Now() - arrived).count();
      total_wait_seconds_ += waited;
      // More slots may be free — the NEW head must wake to take one.
      cv_.notify_all();
      return AdmissionTicket(this, waited);
    }
  }
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  AdmissionStats stats;
  stats.admitted = admitted_;
  stats.shed_queue_full = shed_queue_full_;
  stats.shed_deadline = shed_deadline_;
  stats.shed_cancelled = shed_cancelled_;
  stats.waits = waits_;
  stats.max_queue_depth = max_queue_depth_;
  stats.max_running = max_running_;
  stats.total_wait_seconds = total_wait_seconds_;
  stats.running = running_;
  stats.queued = waiting_.size();
  return stats;
}

}  // namespace textjoin
