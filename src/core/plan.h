#ifndef TEXTJOIN_CORE_PLAN_H_
#define TEXTJOIN_CORE_PLAN_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/federated_query.h"
#include "core/single_join_optimizer.h"
#include "relational/expression.h"
#include "relational/operators.h"
#include "relational/schema.h"

/// \file
/// PrL execution trees (paper Section 6): left-deep join trees over stored
/// relations and the text source, optionally augmented with probe nodes
/// (semi-join reducers) between a scan/join and the next join. Probe nodes
/// always precede the foreign-join node.
///
/// Plan nodes are immutable after construction and shared between candidate
/// plans via shared_ptr, so the dynamic-programming enumerator can extend a
/// common prefix without deep copies.

namespace textjoin {

struct PlanNode;
using PlanNodePtr = std::shared_ptr<const PlanNode>;

/// One node of a PrL tree.
struct PlanNode {
  enum class Kind {
    kScan,           ///< Table scan with pushed-down selections.
    kRelationalJoin, ///< Join of the left subtree with a scan subtree.
    kForeignJoin,    ///< The join with the external text source.
    kProbe,          ///< Probe used as a semi-join reducer.
  };

  Kind kind = Kind::kScan;

  // ---- estimates (cumulative for the subtree) ----
  double est_rows = 0.0;
  double est_cost = 0.0;  ///< Simulated seconds (text access + CPU).

  /// For each text join predicate (index into FederatedQuery::text_joins)
  /// whose relation is inside this subtree: the estimated number of
  /// distinct values of its column in the subtree's output.
  std::map<size_t, double> text_pred_distinct;

  /// Text join predicates already applied by a probe node below (their
  /// effective selectivity at the foreign join is 1).
  std::set<size_t> probed_preds;

  // ---- kScan ----
  std::string table_name;
  std::string alias;
  std::vector<ExprPtr> filters;  ///< Pushed-down single-relation conjuncts.

  // ---- children (kRelationalJoin: both; kForeignJoin/kProbe: left) ----
  PlanNodePtr left;
  PlanNodePtr right;

  // ---- kRelationalJoin ----
  std::vector<ExprPtr> conjuncts;  ///< Join predicates applied here.
  bool use_hash = false;
  std::vector<HashJoin::KeyPair> hash_keys;  ///< When use_hash.

  // ---- kForeignJoin ----
  MethodChoice method;  ///< Join method + probe mask + predicted cost.

  // ---- kProbe ----
  std::vector<size_t> probe_pred_indices;  ///< text_joins probed here.

  /// The output schema of this node.
  Schema output_schema;

  /// Renders an EXPLAIN-style indented tree.
  std::string ToString(const FederatedQuery& query, int indent = 0) const;
};

/// Builders. Each computes the output schema; estimates are filled by the
/// enumerator.
std::shared_ptr<PlanNode> MakeScanNode(const std::string& table_name,
                                       const std::string& alias,
                                       const Schema& table_schema,
                                       std::vector<ExprPtr> filters);
std::shared_ptr<PlanNode> MakeRelationalJoinNode(
    PlanNodePtr left, PlanNodePtr right, std::vector<ExprPtr> conjuncts,
    bool use_hash, std::vector<HashJoin::KeyPair> hash_keys);
std::shared_ptr<PlanNode> MakeForeignJoinNode(PlanNodePtr child,
                                              const FederatedQuery& query,
                                              MethodChoice method);
std::shared_ptr<PlanNode> MakeProbeNode(PlanNodePtr child,
                                        std::vector<size_t> probe_preds);

}  // namespace textjoin

#endif  // TEXTJOIN_CORE_PLAN_H_
