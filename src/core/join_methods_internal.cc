#include "core/join_methods_internal.h"

#include "common/text_match.h"
#include "connector/remote_text_source.h"

namespace textjoin::internal {

Result<ResolvedSpec> ResolveSpec(const ForeignJoinSpec& spec) {
  ResolvedSpec rspec;
  rspec.spec = &spec;
  for (const TextJoinPredicate& pred : spec.joins) {
    TEXTJOIN_ASSIGN_OR_RETURN(size_t idx,
                              spec.left_schema.Resolve(pred.column_ref));
    rspec.join_columns.push_back(idx);
    if (!spec.text.HasField(pred.field)) {
      return Status::NotFound("text field '" + pred.field +
                              "' not declared on " + spec.text.alias);
    }
  }
  for (const TextSelection& sel : spec.selections) {
    if (!spec.text.HasField(sel.field)) {
      return Status::NotFound("text field '" + sel.field +
                              "' not declared on " + spec.text.alias);
    }
  }
  rspec.output_schema = spec.left_schema.Concat(spec.text.ToSchema());
  return rspec;
}

std::optional<std::vector<std::string>> JoinTerms(const ResolvedSpec& rspec,
                                                  const Row& row,
                                                  PredicateMask mask) {
  std::vector<std::string> terms;
  for (size_t i = 0; i < rspec.join_columns.size(); ++i) {
    if ((mask & (1u << i)) == 0) continue;
    const Value& v = row.at(rspec.join_columns[i]);
    if (v.type() != ValueType::kString) return std::nullopt;
    terms.push_back(v.AsString());
  }
  return terms;
}

namespace {

// Appends term nodes for the predicates in `mask` to `children`.
void AppendJoinTermNodes(const ResolvedSpec& rspec,
                         const std::vector<std::string>& terms,
                         PredicateMask mask,
                         std::vector<TextQueryPtr>& children) {
  size_t term_index = 0;
  for (size_t i = 0; i < rspec.spec->joins.size(); ++i) {
    if ((mask & (1u << i)) == 0) continue;
    children.push_back(
        TextQuery::Term(rspec.spec->joins[i].field, terms.at(term_index)));
    ++term_index;
  }
}

}  // namespace

TextQueryPtr BuildSearch(const ResolvedSpec& rspec,
                         const std::vector<std::string>& terms,
                         PredicateMask mask) {
  std::vector<TextQueryPtr> children;
  for (const TextSelection& sel : rspec.spec->selections) {
    children.push_back(TextQuery::Term(sel.field, sel.term));
  }
  AppendJoinTermNodes(rspec, terms, mask, children);
  TEXTJOIN_CHECK(!children.empty(), "search with no predicates");
  return TextQuery::And(std::move(children));
}

TextQueryPtr BuildSelectionSearch(const ForeignJoinSpec& spec) {
  TEXTJOIN_CHECK(!spec.selections.empty(),
                 "selection search needs text selections");
  std::vector<TextQueryPtr> children;
  for (const TextSelection& sel : spec.selections) {
    children.push_back(TextQuery::Term(sel.field, sel.term));
  }
  return TextQuery::And(std::move(children));
}

TextQueryPtr BuildDisjunct(const ResolvedSpec& rspec,
                           const std::vector<std::string>& terms,
                           PredicateMask mask) {
  std::vector<TextQueryPtr> children;
  AppendJoinTermNodes(rspec, terms, mask, children);
  TEXTJOIN_CHECK(!children.empty(), "disjunct with no join terms");
  return TextQuery::And(std::move(children));
}

Row DocumentToRow(const TextRelationDecl& text, const Document& doc) {
  Row row;
  row.reserve(text.fields.size() + 1);
  row.push_back(Value::Str(doc.docid));
  for (const std::string& field : text.fields) {
    row.push_back(Value::Str(JoinFieldValues(doc.FieldValues(field))));
  }
  return row;
}

Row DocidOnlyRow(const TextRelationDecl& text, const std::string& docid) {
  Row row(text.fields.size() + 1, Value::Null());
  row[0] = Value::Str(docid);
  return row;
}

Row NullLeftRow(const Schema& left_schema) {
  return Row(left_schema.num_columns(), Value::Null());
}

bool DocMatchesRow(const ResolvedSpec& rspec, const Row& row,
                   const Document& doc, PredicateMask mask) {
  for (size_t i = 0; i < rspec.spec->joins.size(); ++i) {
    if ((mask & (1u << i)) == 0) continue;
    const Value& v = row.at(rspec.join_columns[i]);
    if (v.type() != ValueType::kString) return false;
    const std::string flattened =
        JoinFieldValues(doc.FieldValues(rspec.spec->joins[i].field));
    if (!TermMatchesFieldText(v.AsString(), flattened)) return false;
  }
  return true;
}

std::map<std::vector<std::string>, std::vector<size_t>> GroupByTerms(
    const ResolvedSpec& rspec, const std::vector<Row>& rows,
    PredicateMask mask) {
  std::map<std::vector<std::string>, std::vector<size_t>> groups;
  for (size_t r = 0; r < rows.size(); ++r) {
    std::optional<std::vector<std::string>> terms =
        JoinTerms(rspec, rows[r], mask);
    if (!terms) continue;
    groups[*terms].push_back(r);
  }
  return groups;
}

Status ValidateProbeMask(const ForeignJoinSpec& spec, PredicateMask mask) {
  if (mask == 0) {
    return Status::InvalidArgument("probe mask must select at least one "
                                   "join predicate");
  }
  const PredicateMask all = FullMask(spec.joins.size());
  if ((mask & ~all) != 0) {
    return Status::OutOfRange("probe mask " + MaskToString(mask) +
                              " selects predicates beyond the " +
                              std::to_string(spec.joins.size()) +
                              " in the spec");
  }
  return Status::OK();
}

void ChargeRelationalMatches(TextSource& source, uint64_t docs_scanned) {
  if (RemoteTextSource* remote = UnwrapRemote(&source)) {
    remote->charging_meter().ChargeRelationalMatches(docs_scanned);
  }
}

Status HandleSourceFailure(const FaultPolicy& policy, Status status,
                           bool affects_completeness) {
  if (status.ok()) return status;
  const bool absorbable = policy.best_effort() ||
                          (policy.recovers() && !affects_completeness);
  if (absorbable && IsTransientError(status.code())) {
    policy.NoteSkippedOperation(affects_completeness);
    return Status::OK();
  }
  return status;
}

Status ParallelStatusFor(ThreadPool* pool, size_t n,
                         const std::function<Status(size_t)>& fn) {
  if (pool == nullptr || pool->num_threads() == 0 || n <= 1) {
    // Serial fast path — but still run every index before failing, so the
    // meter is independent of where an error occurred relative to the
    // parallel path.
    Status first = Status::OK();
    for (size_t i = 0; i < n; ++i) {
      Status s = fn(i);
      if (first.ok() && !s.ok()) first = std::move(s);
    }
    return first;
  }
  std::vector<Status> statuses(n, Status::OK());
  ParallelFor(pool, n, [&](size_t i) { statuses[i] = fn(i); });
  for (Status& s : statuses) {
    if (!s.ok()) return std::move(s);
  }
  return Status::OK();
}

Result<std::vector<Document>> FetchDocs(const std::vector<std::string>& docids,
                                        TextSource& source, ThreadPool* pool,
                                        const FaultPolicy& policy) {
  std::vector<Document> docs(docids.size());
  TEXTJOIN_RETURN_IF_ERROR(
      ParallelStatusFor(pool, docids.size(), [&](size_t i) -> Status {
        Result<Document> fetched = source.Fetch(docids[i]);
        if (!fetched.ok()) {
          // Absorbed => the slot keeps its placeholder Document.
          return HandleSourceFailure(policy, fetched.status(),
                                     /*affects_completeness=*/true);
        }
        docs[i] = *std::move(fetched);
        return Status::OK();
      }));
  return docs;
}

Result<std::vector<Row>> FetchDocRows(const ResolvedSpec& rspec,
                                      const std::vector<std::string>& docids,
                                      TextSource& source, ThreadPool* pool,
                                      const FaultPolicy& policy) {
  const ForeignJoinSpec& spec = *rspec.spec;
  std::vector<Row> doc_rows(docids.size());
  if (!spec.need_document_fields) {
    for (size_t i = 0; i < docids.size(); ++i) {
      doc_rows[i] = DocidOnlyRow(spec.text, docids[i]);
    }
    return doc_rows;
  }
  std::vector<char> skipped(docids.size(), 0);
  TEXTJOIN_RETURN_IF_ERROR(
      ParallelStatusFor(pool, docids.size(), [&](size_t i) -> Status {
        Result<Document> fetched = source.Fetch(docids[i]);
        if (!fetched.ok()) {
          TEXTJOIN_RETURN_IF_ERROR(HandleSourceFailure(
              policy, fetched.status(), /*affects_completeness=*/true));
          skipped[i] = 1;
          return Status::OK();
        }
        doc_rows[i] = DocumentToRow(spec.text, *fetched);
        return Status::OK();
      }));
  // Compact absorbed failures out, preserving order; callers iterate the
  // rows and never index them by docid position.
  size_t out = 0;
  for (size_t i = 0; i < doc_rows.size(); ++i) {
    if (skipped[i]) continue;
    if (out != i) doc_rows[out] = std::move(doc_rows[i]);
    ++out;
  }
  doc_rows.resize(out);
  return doc_rows;
}

}  // namespace textjoin::internal
