#include "core/plan.h"

#include "common/string_util.h"

namespace textjoin {

namespace {

std::string Indent(int levels) { return std::string(levels * 2, ' '); }

}  // namespace

std::string PlanNode::ToString(const FederatedQuery& query,
                               int indent) const {
  std::string out = Indent(indent);
  char buf[96];
  std::snprintf(buf, sizeof(buf), " [rows=%.1f cost=%.2fs]", est_rows,
                est_cost);
  switch (kind) {
    case Kind::kScan: {
      out += "Scan " + table_name;
      if (!alias.empty() && alias != table_name) out += " AS " + alias;
      if (!filters.empty()) {
        std::vector<std::string> parts;
        for (const ExprPtr& f : filters) parts.push_back(f->ToString());
        out += " filter(" + Join(parts, " AND ") + ")";
      }
      out += buf;
      out += "\n";
      return out;
    }
    case Kind::kProbe: {
      out += "Probe[";
      std::vector<std::string> parts;
      for (size_t i : probe_pred_indices) {
        parts.push_back(query.text_joins.at(i).ToString());
      }
      out += Join(parts, ", ") + "]";
      out += buf;
      out += "\n";
      out += left->ToString(query, indent + 1);
      return out;
    }
    case Kind::kForeignJoin: {
      out += "ForeignJoin " + query.text.alias + " method=" +
             JoinMethodName(method.method);
      if (method.method == JoinMethodKind::kPTS ||
          method.method == JoinMethodKind::kPRTP) {
        out += " probe=" + MaskToString(method.probe_mask);
      }
      out += buf;
      out += "\n";
      out += left->ToString(query, indent + 1);
      return out;
    }
    case Kind::kRelationalJoin: {
      out += use_hash ? "HashJoin" : "NestedLoopJoin";
      if (!conjuncts.empty()) {
        std::vector<std::string> parts;
        for (const ExprPtr& c : conjuncts) parts.push_back(c->ToString());
        out += " on(" + Join(parts, " AND ") + ")";
      }
      out += buf;
      out += "\n";
      out += left->ToString(query, indent + 1);
      out += right->ToString(query, indent + 1);
      return out;
    }
  }
  return out + "?\n";
}

std::shared_ptr<PlanNode> MakeScanNode(const std::string& table_name,
                                       const std::string& alias,
                                       const Schema& table_schema,
                                       std::vector<ExprPtr> filters) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kScan;
  node->table_name = table_name;
  node->alias = alias.empty() ? table_name : alias;
  node->filters = std::move(filters);
  node->output_schema = table_schema.WithQualifier(node->alias);
  return node;
}

std::shared_ptr<PlanNode> MakeRelationalJoinNode(
    PlanNodePtr left, PlanNodePtr right, std::vector<ExprPtr> conjuncts,
    bool use_hash, std::vector<HashJoin::KeyPair> hash_keys) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kRelationalJoin;
  node->output_schema = left->output_schema.Concat(right->output_schema);
  node->left = std::move(left);
  node->right = std::move(right);
  node->conjuncts = std::move(conjuncts);
  node->use_hash = use_hash;
  node->hash_keys = std::move(hash_keys);
  return node;
}

std::shared_ptr<PlanNode> MakeForeignJoinNode(PlanNodePtr child,
                                              const FederatedQuery& query,
                                              MethodChoice method) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kForeignJoin;
  node->output_schema =
      child->output_schema.Concat(query.text.ToSchema());
  node->left = std::move(child);
  node->method = method;
  return node;
}

std::shared_ptr<PlanNode> MakeProbeNode(PlanNodePtr child,
                                        std::vector<size_t> probe_preds) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanNode::Kind::kProbe;
  node->output_schema = child->output_schema;
  node->left = std::move(child);
  node->probe_pred_indices = std::move(probe_preds);
  return node;
}

}  // namespace textjoin
