#ifndef TEXTJOIN_CORE_ADAPTIVE_H_
#define TEXTJOIN_CORE_ADAPTIVE_H_

#include <vector>

#include "core/join_methods.h"

/// \file
/// Runtime re-optimization for probe + RTP (end of paper Section 5):
/// "although probe, followed by relational text processing is an
/// attractive join method, it suffers from the danger that if the
/// selectivity and fanout estimates are unreliable, then too many
/// documents are fetched. We rely on runtime optimization techniques to
/// address such difficulties."
///
/// The adaptive method sends the probes first (cheap, short form), then
/// *counts* the documents the successful probes matched before fetching
/// anything. If the count is within the optimizer's fetch budget, it
/// proceeds as P+RTP; if the estimates were wrong and the count blows
/// past the budget, it switches to tuple substitution over the surviving
/// tuples instead — reusing the probe outcomes it already paid for, and
/// never fetching the oversized candidate set.

namespace textjoin {

/// What the adaptive execution ended up doing.
enum class AdaptiveOutcome {
  kFetched,    ///< Candidate count within budget — completed as P+RTP.
  kSwitched,   ///< Budget exceeded — completed as TS over survivors.
};

/// Result of an adaptive P+RTP execution.
struct AdaptiveResult {
  ForeignJoinResult join;
  AdaptiveOutcome outcome = AdaptiveOutcome::kFetched;
  size_t candidate_docs = 0;  ///< Distinct docs the probes matched.
};

/// Executes P+RTP with a runtime fetch budget. Produces exactly the same
/// rows as ExecuteForeignJoin(kPRTP, ...) regardless of which path runs.
/// `fetch_budget` is the maximum number of distinct long-form retrievals
/// the optimizer is willing to pay (e.g. derived from the predicted count
/// times a slack factor).
Result<AdaptiveResult> ExecuteProbeRTPAdaptive(
    const ForeignJoinSpec& spec, const std::vector<Row>& left_rows,
    TextSource& source, PredicateMask probe_mask, size_t fetch_budget);

}  // namespace textjoin

#endif  // TEXTJOIN_CORE_ADAPTIVE_H_
