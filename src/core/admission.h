#ifndef TEXTJOIN_CORE_ADMISSION_H_
#define TEXTJOIN_CORE_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <utility>

#include "common/cancel.h"
#include "common/status.h"
#include "connector/overload.h"

/// \file
/// Query admission control (DESIGN.md, "Overload, admission control &
/// hedging"). Under offered load beyond what the execution slots can
/// carry, unbounded queueing collapses every query's latency together;
/// this controller keeps the queue bounded and sheds early the queries
/// that cannot make their deadline anyway:
///
///  - a fixed number of execution slots; excess queries QUEUE (bounded)
///    ordered by (priority desc, arrival order);
///  - a query whose queue is full is shed immediately (kUnavailable — the
///    honest "try later", cheaper for everyone than queueing to fail);
///  - a query whose remaining deadline cannot cover its estimated cost
///    (the optimizer's CostModel estimate, scaled to predicted wall time)
///    is shed with kDeadlineExceeded — before it wastes a slot producing
///    an answer nobody is waiting for. Re-checked while queued: deadlines
///    keep expiring in the queue.

namespace textjoin {

struct AdmissionOptions {
  /// Queries running concurrently; further admits queue.
  int max_concurrent = 4;
  /// Queued queries beyond which new arrivals are shed with kUnavailable.
  size_t max_queue = 64;
  /// Predicted wall seconds per simulated cost second (the CostModel's
  /// unit), used to shed queries whose remaining deadline cannot cover
  /// their estimated cost. 0 disables cost-based shedding (queries are
  /// still shed once their deadline has actually passed).
  double cost_scale = 0.0;
  /// Test hook. With a clock injected the controller never arms timed
  /// waits (a virtual clock cannot wake a blocked thread); queued sheds
  /// are evaluated whenever a slot frees or Poke() is called.
  SteadyClockFn clock;
};

/// Lifetime counters plus high-water marks (value snapshot).
struct AdmissionStats {
  uint64_t admitted = 0;         ///< Queries granted a slot.
  uint64_t shed_queue_full = 0;  ///< Arrivals shed on a full queue.
  uint64_t shed_deadline = 0;    ///< Shed on deadline / cost grounds.
  uint64_t shed_cancelled = 0;   ///< Shed because the query was cancelled.
  uint64_t waits = 0;            ///< Admits that had to queue first.
  uint64_t max_queue_depth = 0;  ///< Deepest the queue ever got.
  uint64_t max_running = 0;      ///< Most slots ever in use at once.
  double total_wait_seconds = 0.0;  ///< Summed admission queueing time.
  /// Instantaneous gauges at snapshot time — the leak tests' ground truth:
  /// after every ticket is released they must both read zero.
  int running = 0;       ///< Slots currently held by live tickets.
  size_t queued = 0;     ///< Waiters currently queued.
};

class AdmissionController;

/// Move-only slot holder; releasing (destruction) frees the slot and wakes
/// the queue head.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  AdmissionTicket(AdmissionTicket&& other) noexcept
      : controller_(std::exchange(other.controller_, nullptr)),
        wait_seconds_(other.wait_seconds_) {}
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept;
  ~AdmissionTicket();
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  /// How long this query queued before admission.
  double wait_seconds() const { return wait_seconds_; }

 private:
  friend class AdmissionController;
  AdmissionTicket(AdmissionController* controller, double wait_seconds)
      : controller_(controller), wait_seconds_(wait_seconds) {}

  AdmissionController* controller_ = nullptr;
  double wait_seconds_ = 0.0;
};

/// The service-wide admission queue. Thread-safe; one per
/// FederationService, like the breaker / limiter / hedge controller.
class AdmissionController {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit AdmissionController(AdmissionOptions options = {});

  /// Blocks until a slot is granted (honoring priority, then arrival
  /// order), or sheds: kUnavailable when the queue is full on arrival,
  /// kDeadlineExceeded when `deadline` has passed or — with cost_scale set
  /// — the remaining deadline cannot cover `est_cost_seconds` (simulated
  /// CostModel seconds). `deadline` TimePoint::max() means none.
  /// A queued entry whose `token` fires sheds immediately (with the
  /// token's status — kCancelled for aborts/shutdown) instead of waiting
  /// out the queue: cancellation interrupts the wait. A null (default)
  /// token never fires.
  Result<AdmissionTicket> Admit(double est_cost_seconds, TimePoint deadline,
                                int priority,
                                const CancelToken& token = CancelToken());

  /// Wakes queued waiters so they re-evaluate their deadline — for tests
  /// driving a fake clock (real-clock waiters wake themselves).
  void Poke();

  TimePoint Now() const;
  AdmissionStats stats() const;

 private:
  friend class AdmissionTicket;
  void Release();

  /// (-priority, arrival seq): set order is the admission order.
  using Waiter = std::pair<int, uint64_t>;

  const AdmissionOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  int running_ = 0;
  std::set<Waiter> waiting_;
  uint64_t next_seq_ = 0;

  uint64_t admitted_ = 0;
  uint64_t shed_queue_full_ = 0;
  uint64_t shed_deadline_ = 0;
  uint64_t shed_cancelled_ = 0;
  uint64_t waits_ = 0;
  uint64_t max_queue_depth_ = 0;
  uint64_t max_running_ = 0;
  double total_wait_seconds_ = 0.0;
};

}  // namespace textjoin

#endif  // TEXTJOIN_CORE_ADMISSION_H_
