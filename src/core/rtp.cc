#include "core/pipeline.h"

namespace textjoin::pipeline {

/// Section 3.2 — relational text processing: one selections-only search,
/// fetch every candidate's long form, and evaluate the join predicates by
/// SQL string matching on the relational side.
///
/// Composition: the single search unit chains one fetch unit per candidate,
/// and each fetch chains its document's match unit — so document d is being
/// string-matched while later candidates are still in flight. The meter
/// charges c_a per document scanned, mirroring the paper's "proportional to
/// the number of the documents" model; a per-document charge inside the
/// match unit sums to exactly the serial bulk charge (placeholder slots —
/// best-effort fetch skips — never reach a match unit, so they are neither
/// scanned nor charged). Assembly replays document order.
Result<ForeignJoinResult> RunRTP(MethodContext& ctx) {
  const ResolvedSpec& rspec = ctx.rspec;
  const ForeignJoinSpec& spec = *rspec.spec;
  StageScheduler& sched = ctx.sched;
  const PredicateMask all = FullMask(spec.joins.size());

  const StageScheduler::StageId sd_build = ctx.Stage(StageKind::kQueryBuild);
  const StageScheduler::StageId sd_search =
      ctx.Stage(StageKind::kSearchDispatch);
  const StageScheduler::StageId sd_fetch = ctx.Stage(StageKind::kFetch);
  const StageScheduler::StageId sd_match = ctx.Stage(StageKind::kMatch);
  const StageScheduler::StageId sd_assemble = ctx.Stage(StageKind::kAssemble);

  TextQueryPtr search;
  {
    ScopedStageTimer timer(sched, sd_build, 1);
    search = BuildSelectionSearch(spec);
  }

  ForeignJoinResult result;
  result.schema = rspec.output_schema;

  // rows_per_doc is sized once by the search unit before any fetch unit is
  // spawned (scheduler handoff orders the resize before every unit that
  // indexes it); a deque keeps element addresses stable.
  DocFetcher fetcher(sched, sd_fetch);
  std::deque<std::vector<Row>> rows_per_doc;
  sched.Spawn(sd_search, 0, [&]() -> Status {
    Result<std::vector<std::string>> searched =
        sched.Search(sd_search, *search);
    if (!searched.ok()) {
      // If the one search fails even under best-effort there is nothing to
      // degrade to: the whole candidate set is unknown, so the result is
      // empty and marked incomplete.
      return sched.HandleSourceFailure(searched.status(),
                                       /*affects_completeness=*/true);
    }
    const std::vector<std::string>& docids = *searched;
    rows_per_doc.resize(docids.size());
    for (size_t d = 0; d < docids.size(); ++d) {
      std::vector<Row>* out = &rows_per_doc[d];
      fetcher.Fetch(docids[d], sd_match,
                    [&, out](const Document& doc) -> Status {
                      sched.ChargeRelationalMatches(sd_match, 1);
                      Row doc_row = DocumentToRow(spec.text, doc);
                      for (const Row& left : ctx.left_rows) {
                        if (DocMatchesRow(rspec, left, doc, all)) {
                          out->push_back(ConcatRows(left, doc_row));
                        }
                      }
                      return Status::OK();
                    });
    }
    return Status::OK();
  });
  TEXTJOIN_RETURN_IF_ERROR(sched.Wait());

  ScopedStageTimer timer(sched, sd_assemble, 1);
  for (std::vector<Row>& rows : rows_per_doc) {
    for (Row& row : rows) result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace textjoin::pipeline
