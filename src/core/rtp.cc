#include "core/join_method_impls.h"

namespace textjoin::internal {

Result<ForeignJoinResult> ExecuteRTP(const ResolvedSpec& rspec,
                                     const std::vector<Row>& left_rows,
                                     TextSource& source) {
  const ForeignJoinSpec& spec = *rspec.spec;
  if (spec.selections.empty()) {
    // Without selections, the single text search would be unconstrained.
    // The paper (Section 3.2): "This method further requires that there are
    // selection conditions on the text data."
    return Status::InvalidArgument("RTP requires text selection conditions");
  }
  ForeignJoinResult result;
  result.schema = rspec.output_schema;

  // One search carrying only the selection conditions.
  TextQueryPtr search = BuildSelectionSearch(spec);
  TEXTJOIN_ASSIGN_OR_RETURN(std::vector<std::string> docids,
                            source.Search(*search));
  if (docids.empty()) return result;

  // Fetch the long form of every candidate: the join predicates are
  // evaluated against full field text on the relational side.
  std::vector<Document> docs;
  docs.reserve(docids.size());
  for (const std::string& docid : docids) {
    TEXTJOIN_ASSIGN_OR_RETURN(Document doc, source.Fetch(docid));
    docs.push_back(std::move(doc));
  }

  // Relational text processing: SQL string matching of every candidate
  // document. The meter charges c_a per document scanned, mirroring the
  // paper's "proportional to the number of the documents" model.
  ChargeRelationalMatches(source, docs.size());
  const PredicateMask all = FullMask(spec.joins.size());
  for (const Document& doc : docs) {
    Row doc_row = DocumentToRow(spec.text, doc);
    for (const Row& left : left_rows) {
      if (DocMatchesRow(rspec, left, doc, all)) {
        result.rows.push_back(ConcatRows(left, doc_row));
      }
    }
  }
  return result;
}

}  // namespace textjoin::internal
