#include "core/join_method_impls.h"

namespace textjoin::internal {

Result<ForeignJoinResult> ExecuteRTP(const ResolvedSpec& rspec,
                                     const std::vector<Row>& left_rows,
                                     TextSource& source, ThreadPool* pool,
                                     const FaultPolicy& policy) {
  const ForeignJoinSpec& spec = *rspec.spec;
  if (spec.selections.empty()) {
    // Without selections, the single text search would be unconstrained.
    // The paper (Section 3.2): "This method further requires that there are
    // selection conditions on the text data."
    return Status::InvalidArgument("RTP requires text selection conditions");
  }
  ForeignJoinResult result;
  result.schema = rspec.output_schema;

  // One search carrying only the selection conditions. If it fails even
  // under best-effort there is nothing to degrade to: the whole candidate
  // set is unknown, so the result is empty and marked incomplete.
  TextQueryPtr search = BuildSelectionSearch(spec);
  Result<std::vector<std::string>> searched = source.Search(*search);
  if (!searched.ok()) {
    TEXTJOIN_RETURN_IF_ERROR(HandleSourceFailure(
        policy, searched.status(), /*affects_completeness=*/true));
    return result;
  }
  const std::vector<std::string>& docids = *searched;
  if (docids.empty()) return result;

  // Fetch the long form of every candidate — the method's dominant cost,
  // and every retrieval is independent, so the fetches overlap across the
  // pool. The join predicates are then evaluated against full field text
  // on the relational side.
  TEXTJOIN_ASSIGN_OR_RETURN(std::vector<Document> docs,
                            FetchDocs(docids, source, pool, policy));

  // Relational text processing: SQL string matching of every candidate
  // document. The meter charges c_a per document scanned, mirroring the
  // paper's "proportional to the number of the documents" model. Matching
  // is local CPU work; it parallelizes per document into indexed slots,
  // assembled in document order for deterministic output. Placeholder
  // slots (best-effort fetch skips) are neither scanned nor charged.
  uint64_t scanned = 0;
  for (const Document& doc : docs) {
    if (!IsPlaceholderDoc(doc)) ++scanned;
  }
  ChargeRelationalMatches(source, scanned);
  const PredicateMask all = FullMask(spec.joins.size());
  std::vector<std::vector<Row>> rows_per_doc(docs.size());
  ParallelFor(pool, docs.size(), [&](size_t d) {
    const Document& doc = docs[d];
    if (IsPlaceholderDoc(doc)) return;
    Row doc_row = DocumentToRow(spec.text, doc);
    for (const Row& left : left_rows) {
      if (DocMatchesRow(rspec, left, doc, all)) {
        rows_per_doc[d].push_back(ConcatRows(left, doc_row));
      }
    }
  });
  for (std::vector<Row>& rows : rows_per_doc) {
    for (Row& row : rows) result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace textjoin::internal
