#ifndef TEXTJOIN_CORE_PROBE_CACHE_H_
#define TEXTJOIN_CORE_PROBE_CACHE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "relational/tuple.h"

/// \file
/// The probe cache of Section 3.3: remembers, per query execution, whether
/// the probe for a given combination of probe-column values succeeded
/// (matched at least one document) or failed. A fail entry lets the join
/// method skip every later tuple that agrees on the probe columns without
/// invoking the text system.

namespace textjoin {

/// Maps probe-key rows (the tuple projected onto the probe columns) to the
/// probe outcome. Lives for the duration of one query execution.
class ProbeCache {
 public:
  /// The cached outcome for `key`, or nullopt if never probed.
  std::optional<bool> Lookup(const Row& key) const {
    ++lookups_;
    auto it = entries_.find(key);
    if (it == entries_.end()) return std::nullopt;
    ++hits_;
    return it->second;
  }

  /// Records the outcome of a probe (true = documents matched).
  void Insert(const Row& key, bool success) { entries_[key] = success; }

  size_t size() const { return entries_.size(); }
  uint64_t lookups() const { return lookups_; }
  uint64_t hits() const { return hits_; }

 private:
  std::unordered_map<Row, bool, RowHash, RowEq> entries_;
  mutable uint64_t lookups_ = 0;
  mutable uint64_t hits_ = 0;
};

}  // namespace textjoin

#endif  // TEXTJOIN_CORE_PROBE_CACHE_H_
