#ifndef TEXTJOIN_CORE_PROBE_CACHE_H_
#define TEXTJOIN_CORE_PROBE_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "relational/tuple.h"

/// \file
/// The probe cache of Section 3.3: remembers, per query execution, whether
/// the probe for a given combination of probe-column values succeeded
/// (matched at least one document) or failed. A fail entry lets the join
/// method skip every later tuple that agrees on the probe columns without
/// invoking the text system.

namespace textjoin {

/// Maps probe-key rows (the tuple projected onto the probe columns) to the
/// probe outcome. Lives for the duration of one query execution.
///
/// Thread-safe: entries are striped by key hash, each stripe behind its own
/// mutex, so concurrent executions (and the parallel fetch phases running
/// around P+TS's sequential probe loop) can share one cache without a
/// single contended lock.
class ProbeCache {
 public:
  /// The cached outcome for `key`, or nullopt if never probed.
  std::optional<bool> Lookup(const Row& key) const {
    lookups_.fetch_add(1, std::memory_order_relaxed);
    const Stripe& stripe = StripeFor(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.entries.find(key);
    if (it == stripe.entries.end()) return std::nullopt;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }

  /// Records the outcome of a probe (true = documents matched).
  void Insert(const Row& key, bool success) {
    Stripe& stripe = StripeFor(key);
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.entries[key] = success;
  }

  /// A consistent entry count: all stripe locks are held simultaneously
  /// (acquired in index order — the only place locks nest, so the global
  /// order is trivially acyclic) while summing. Locking stripes one at a
  /// time instead would let an insert land in an already-counted stripe
  /// while a later stripe is being read, returning a total that was never
  /// the cache's size at any instant.
  size_t size() const {
    std::array<std::unique_lock<std::mutex>, kStripes> locks;
    for (size_t i = 0; i < kStripes; ++i) {
      locks[i] = std::unique_lock<std::mutex>(stripes_[i].mu);
    }
    size_t total = 0;
    for (const Stripe& stripe : stripes_) total += stripe.entries.size();
    return total;
  }
  uint64_t lookups() const { return lookups_.load(std::memory_order_relaxed); }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }

 private:
  static constexpr size_t kStripes = 16;  // power of two, masks the hash

  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<Row, bool, RowHash, RowEq> entries;
  };

  Stripe& StripeFor(const Row& key) {
    return stripes_[RowHash{}(key) & (kStripes - 1)];
  }
  const Stripe& StripeFor(const Row& key) const {
    return stripes_[RowHash{}(key) & (kStripes - 1)];
  }

  Stripe stripes_[kStripes];
  mutable std::atomic<uint64_t> lookups_{0};
  mutable std::atomic<uint64_t> hits_{0};
};

}  // namespace textjoin

#endif  // TEXTJOIN_CORE_PROBE_CACHE_H_
