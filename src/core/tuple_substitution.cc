#include "core/pipeline.h"

namespace textjoin::pipeline {

/// Section 3.1 — tuple substitution, one search per distinct combination of
/// the join columns (the distinct-tuple variant; tuples with NULL /
/// non-string join values cannot match and are never sent).
///
/// Composition: each combination's search unit spawns the fetch units for
/// its answer immediately, so combination k+1's search overlaps the fetches
/// of combination k — there is no per-phase barrier. Long forms are
/// retrieved per search (no cross-search cache), matching the paper's
/// c_l * V accounting for TS. Assembly replays the deterministic
/// (term-sorted) group order, so output ordering is identical to serial
/// execution.
Result<ForeignJoinResult> RunTS(MethodContext& ctx) {
  const ResolvedSpec& rspec = ctx.rspec;
  const ForeignJoinSpec& spec = *rspec.spec;
  StageScheduler& sched = ctx.sched;
  const PredicateMask all = FullMask(spec.joins.size());

  const StageScheduler::StageId sd_keys = ctx.Stage(StageKind::kDistinctKeys);
  const StageScheduler::StageId sd_build = ctx.Stage(StageKind::kQueryBuild);
  const StageScheduler::StageId sd_search =
      ctx.Stage(StageKind::kSearchDispatch);
  const StageScheduler::StageId sd_fetch = ctx.Stage(StageKind::kFetch);
  const StageScheduler::StageId sd_assemble = ctx.Stage(StageKind::kAssemble);

  KeyGroups groups;
  {
    ScopedStageTimer timer(sched, sd_keys, 1);
    groups = GroupRowsByTerms(rspec, ctx.left_rows, all);
  }
  std::vector<TextQueryPtr> searches;
  {
    ScopedStageTimer timer(sched, sd_build, groups.size());
    searches.reserve(groups.size());
    for (const std::vector<std::string>& terms : groups.terms) {
      searches.push_back(BuildSearch(rspec, terms, all));
    }
  }

  // Per-group answers: fetch slots when long forms are needed, the raw
  // docids otherwise. Slot-addressed so assembly is schedule-independent.
  DocFetcher fetcher(sched, sd_fetch);
  std::vector<std::vector<size_t>> slots_per_group(groups.size());
  std::vector<std::vector<std::string>> docids_per_group(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    sched.Spawn(sd_search, g, [&, g]() -> Status {
      Result<std::vector<std::string>> searched =
          sched.Search(sd_search, *searches[g]);
      if (!searched.ok()) {
        // Best-effort: the whole combination is dropped (its rows are
        // missing from the answer).
        return sched.HandleSourceFailure(searched.status(),
                                         /*affects_completeness=*/true);
      }
      docids_per_group[g] = *std::move(searched);
      if (spec.need_document_fields) {
        slots_per_group[g].reserve(docids_per_group[g].size());
        for (const std::string& docid : docids_per_group[g]) {
          slots_per_group[g].push_back(fetcher.Fetch(docid));
        }
      }
      return Status::OK();
    });
  }
  TEXTJOIN_RETURN_IF_ERROR(sched.Wait());

  ForeignJoinResult result;
  result.schema = rspec.output_schema;
  ScopedStageTimer timer(sched, sd_assemble, 1);
  for (size_t g = 0; g < groups.size(); ++g) {
    std::vector<Row> doc_rows;
    if (spec.need_document_fields) {
      doc_rows.reserve(slots_per_group[g].size());
      for (size_t slot : slots_per_group[g]) {
        const Document& doc = fetcher.doc(slot);
        if (IsPlaceholderDoc(doc)) continue;  // Best-effort fetch skip.
        doc_rows.push_back(DocumentToRow(spec.text, doc));
      }
    } else {
      doc_rows.reserve(docids_per_group[g].size());
      for (const std::string& docid : docids_per_group[g]) {
        doc_rows.push_back(DocidOnlyRow(spec.text, docid));
      }
    }
    if (doc_rows.empty()) continue;
    for (size_t r : groups.rows[g]) {
      for (const Row& doc_row : doc_rows) {
        result.rows.push_back(ConcatRows(ctx.left_rows[r], doc_row));
      }
    }
  }
  return result;
}

}  // namespace textjoin::pipeline
