#include "core/join_method_impls.h"

namespace textjoin::internal {

Result<ForeignJoinResult> ExecuteTS(const ResolvedSpec& rspec,
                                    const std::vector<Row>& left_rows,
                                    TextSource& source, ThreadPool* pool,
                                    const FaultPolicy& policy) {
  const ForeignJoinSpec& spec = *rspec.spec;
  if (spec.selections.empty() && spec.joins.empty()) {
    return Status::InvalidArgument(
        "TS needs at least one text predicate to instantiate");
  }
  const PredicateMask all = FullMask(spec.joins.size());
  ForeignJoinResult result;
  result.schema = rspec.output_schema;

  // The distinct-tuple variant (Section 3.1): one search per distinct
  // combination of join-column values; tuples with NULL / non-string join
  // values cannot match and are never sent.
  const auto groups = GroupByTerms(rspec, left_rows, all);

  // Each combination's search + fetches are independent of every other
  // combination's, so they overlap across the pool. Long forms are
  // retrieved per search (no cross-search cache), matching the paper's
  // c_l * V accounting for TS. Per-group text rows land in indexed slots;
  // assembly below walks the groups in their deterministic (term-sorted)
  // order, so output ordering is identical to serial execution.
  std::vector<const std::vector<size_t>*> group_rows;
  std::vector<TextQueryPtr> searches;
  group_rows.reserve(groups.size());
  searches.reserve(groups.size());
  for (const auto& [terms, row_indices] : groups) {
    searches.push_back(BuildSearch(rspec, terms, all));
    group_rows.push_back(&row_indices);
  }

  std::vector<std::vector<Row>> doc_rows_per_group(groups.size());
  TEXTJOIN_RETURN_IF_ERROR(
      ParallelStatusFor(pool, groups.size(), [&](size_t g) -> Status {
        Result<std::vector<std::string>> searched =
            source.Search(*searches[g]);
        if (!searched.ok()) {
          // Best-effort: the whole combination is dropped (its rows are
          // missing from the answer).
          return HandleSourceFailure(policy, searched.status(),
                                     /*affects_completeness=*/true);
        }
        if (searched->empty()) return Status::OK();
        // Fetches within one group run serially — cross-group overlap
        // already keeps the pool busy — unless there is only one group.
        TEXTJOIN_ASSIGN_OR_RETURN(
            doc_rows_per_group[g],
            FetchDocRows(rspec, *searched, source,
                         groups.size() == 1 ? pool : nullptr, policy));
        return Status::OK();
      }));

  for (size_t g = 0; g < groups.size(); ++g) {
    if (doc_rows_per_group[g].empty()) continue;
    for (size_t r : *group_rows[g]) {
      for (const Row& doc_row : doc_rows_per_group[g]) {
        result.rows.push_back(ConcatRows(left_rows[r], doc_row));
      }
    }
  }
  return result;
}

}  // namespace textjoin::internal
