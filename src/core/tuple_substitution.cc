#include "core/join_method_impls.h"

namespace textjoin::internal {

Result<ForeignJoinResult> ExecuteTS(const ResolvedSpec& rspec,
                                    const std::vector<Row>& left_rows,
                                    TextSource& source) {
  const ForeignJoinSpec& spec = *rspec.spec;
  if (spec.selections.empty() && spec.joins.empty()) {
    return Status::InvalidArgument(
        "TS needs at least one text predicate to instantiate");
  }
  const PredicateMask all = FullMask(spec.joins.size());
  ForeignJoinResult result;
  result.schema = rspec.output_schema;

  // The distinct-tuple variant (Section 3.1): one search per distinct
  // combination of join-column values; tuples with NULL / non-string join
  // values cannot match and are never sent.
  const auto groups = GroupByTerms(rspec, left_rows, all);
  for (const auto& [terms, row_indices] : groups) {
    TextQueryPtr search = BuildSearch(rspec, terms, all);
    TEXTJOIN_ASSIGN_OR_RETURN(std::vector<std::string> docids,
                              source.Search(*search));
    if (docids.empty()) continue;
    // Build the text-side rows for this search's result set. Long forms are
    // retrieved per search (no cross-search cache), matching the paper's
    // c_l * V accounting for TS.
    std::vector<Row> doc_rows;
    doc_rows.reserve(docids.size());
    for (const std::string& docid : docids) {
      if (spec.need_document_fields) {
        TEXTJOIN_ASSIGN_OR_RETURN(Document doc, source.Fetch(docid));
        doc_rows.push_back(DocumentToRow(spec.text, doc));
      } else {
        doc_rows.push_back(DocidOnlyRow(spec.text, docid));
      }
    }
    for (size_t r : row_indices) {
      for (const Row& doc_row : doc_rows) {
        result.rows.push_back(ConcatRows(left_rows[r], doc_row));
      }
    }
  }
  return result;
}

}  // namespace textjoin::internal
