#include "core/join_method_impls.h"

#include <set>

namespace textjoin::internal {

namespace {

/// Runs the OR-batched semi-join searches and returns the distinct matching
/// docids, in first-seen order. Batch size respects the source's term
/// limit M: each batch spends the selection terms once plus k terms per
/// disjunct (paper Section 3.2: |Q|/M searches).
Result<std::vector<std::string>> RunBatchedSemiJoin(
    const ResolvedSpec& rspec, const std::vector<Row>& left_rows,
    TextSource& source) {
  const ForeignJoinSpec& spec = *rspec.spec;
  const PredicateMask all = FullMask(spec.joins.size());
  const auto groups = GroupByTerms(rspec, left_rows, all);

  const size_t selection_terms = spec.selections.size();
  const size_t terms_per_disjunct = spec.joins.size();
  const size_t m = source.max_search_terms();
  if (selection_terms + terms_per_disjunct > m) {
    return Status::ResourceExhausted(
        "one disjunct already exceeds the term limit M=" + std::to_string(m));
  }
  const size_t batch_capacity =
      std::max<size_t>(1, (m - selection_terms) / terms_per_disjunct);

  std::vector<std::string> distinct_docids;
  std::set<std::string> seen;

  auto flush = [&](std::vector<TextQueryPtr>& disjuncts) -> Status {
    if (disjuncts.empty()) return Status::OK();
    std::vector<TextQueryPtr> children;
    for (const TextSelection& sel : spec.selections) {
      children.push_back(TextQuery::Term(sel.field, sel.term));
    }
    children.push_back(TextQuery::Or(std::move(disjuncts)));
    disjuncts.clear();
    TextQueryPtr search = TextQuery::And(std::move(children));
    Result<std::vector<std::string>> docids = source.Search(*search);
    if (!docids.ok()) return docids.status();
    for (const std::string& docid : *docids) {
      if (seen.insert(docid).second) distinct_docids.push_back(docid);
    }
    return Status::OK();
  };

  std::vector<TextQueryPtr> pending;
  for (const auto& [terms, row_indices] : groups) {
    pending.push_back(BuildDisjunct(rspec, terms, all));
    if (pending.size() >= batch_capacity) {
      TEXTJOIN_RETURN_IF_ERROR(flush(pending));
    }
  }
  TEXTJOIN_RETURN_IF_ERROR(flush(pending));
  return distinct_docids;
}

}  // namespace

Result<ForeignJoinResult> ExecuteSJ(const ResolvedSpec& rspec,
                                    const std::vector<Row>& left_rows,
                                    TextSource& source) {
  const ForeignJoinSpec& spec = *rspec.spec;
  if (spec.joins.empty()) {
    return Status::InvalidArgument("SJ requires text join predicates");
  }
  if (spec.left_columns_needed) {
    // Pure SJ cannot recover which tuple matched which document; the paper
    // applies it when "the query itself is a semi-join" (only docids are
    // projected). Use SJ+RTP otherwise.
    return Status::InvalidArgument(
        "SJ yields a doc-side semi-join; the query needs outer columns");
  }
  TEXTJOIN_ASSIGN_OR_RETURN(std::vector<std::string> docids,
                            RunBatchedSemiJoin(rspec, left_rows, source));
  ForeignJoinResult result;
  result.schema = rspec.output_schema;
  const Row null_left = NullLeftRow(spec.left_schema);
  for (const std::string& docid : docids) {
    Row doc_row;
    if (spec.need_document_fields) {
      TEXTJOIN_ASSIGN_OR_RETURN(Document doc, source.Fetch(docid));
      doc_row = DocumentToRow(spec.text, doc);
    } else {
      doc_row = DocidOnlyRow(spec.text, docid);
    }
    result.rows.push_back(ConcatRows(null_left, doc_row));
  }
  return result;
}

Result<ForeignJoinResult> ExecuteSJRTP(const ResolvedSpec& rspec,
                                       const std::vector<Row>& left_rows,
                                       TextSource& source) {
  const ForeignJoinSpec& spec = *rspec.spec;
  if (spec.joins.empty()) {
    return Status::InvalidArgument("SJ+RTP requires text join predicates");
  }
  TEXTJOIN_ASSIGN_OR_RETURN(std::vector<std::string> docids,
                            RunBatchedSemiJoin(rspec, left_rows, source));
  // Fetch the distinct candidates once, then recover the pairing by
  // relational text processing over all join predicates.
  std::vector<Document> docs;
  docs.reserve(docids.size());
  for (const std::string& docid : docids) {
    TEXTJOIN_ASSIGN_OR_RETURN(Document doc, source.Fetch(docid));
    docs.push_back(std::move(doc));
  }
  ChargeRelationalMatches(source, docs.size());

  ForeignJoinResult result;
  result.schema = rspec.output_schema;
  const PredicateMask all = FullMask(spec.joins.size());
  for (const Document& doc : docs) {
    Row doc_row = DocumentToRow(spec.text, doc);
    for (const Row& left : left_rows) {
      if (DocMatchesRow(rspec, left, doc, all)) {
        result.rows.push_back(ConcatRows(left, doc_row));
      }
    }
  }
  return result;
}

}  // namespace textjoin::internal
