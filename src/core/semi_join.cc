#include <algorithm>
#include <set>
#include <unordered_map>
#include <utility>

#include "core/pipeline.h"

namespace textjoin::pipeline {

namespace {

/// Builds the OR-batched search over the disjuncts [begin, end): the
/// selection terms AND'ed with the OR of the per-combination disjuncts.
TextQueryPtr BuildBatchQuery(
    const ResolvedSpec& rspec,
    const std::vector<std::vector<std::string>>& disjunct_terms,
    size_t begin, size_t end) {
  const ForeignJoinSpec& spec = *rspec.spec;
  const PredicateMask all = FullMask(spec.joins.size());
  std::vector<TextQueryPtr> disjuncts;
  disjuncts.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    disjuncts.push_back(BuildDisjunct(rspec, disjunct_terms[i], all));
  }
  std::vector<TextQueryPtr> children;
  for (const TextSelection& sel : spec.selections) {
    children.push_back(TextQuery::Term(sel.field, sel.term));
  }
  children.push_back(TextQuery::Or(std::move(disjuncts)));
  return TextQuery::And(std::move(children));
}

/// Method-level recovery for an OR-batch whose search failed transiently
/// even through the resilience layer: split the disjunct range in half and
/// try each half, recursing on halves that fail again. The base case is a
/// single disjunct — one combination's per-tuple search; if even that
/// fails, best-effort drops the disjunct (recorded as a skipped batch
/// unit) while retry-then-fail propagates `failure`. Smaller searches give
/// genuinely better odds: fewer terms, shorter server time, and each
/// retry-wrapped sub-search gets a fresh retry budget. Recovery runs
/// inside the failed batch's own unit, so other batches' fetches proceed
/// concurrently; the sub-searches it issues depend only on this batch's
/// own outcomes, never on scheduling order.
Result<std::vector<std::string>> RecoverBatch(
    StageScheduler& sched, StageScheduler::StageId search_stage,
    const ResolvedSpec& rspec,
    const std::vector<std::vector<std::string>>& disjunct_terms,
    size_t begin, size_t end, Status failure) {
  const FaultPolicy& policy = sched.policy();
  if (end - begin == 1) {
    if (policy.best_effort()) {
      policy.NoteSkippedBatch(1);
      return std::vector<std::string>{};
    }
    return failure;
  }
  policy.NoteResplit();
  const size_t mid = begin + (end - begin) / 2;
  std::vector<std::string> docids;
  for (const auto& [half_begin, half_end] :
       {std::pair{begin, mid}, std::pair{mid, end}}) {
    Result<std::vector<std::string>> half = sched.Search(
        search_stage,
        *BuildBatchQuery(rspec, disjunct_terms, half_begin, half_end));
    if (!half.ok()) {
      if (!IsTransientError(half.status().code())) return half.status();
      TEXTJOIN_ASSIGN_OR_RETURN(
          half, RecoverBatch(sched, search_stage, rspec, disjunct_terms,
                             half_begin, half_end, half.status()));
    }
    docids.insert(docids.end(), half->begin(), half->end());
  }
  return docids;
}

/// The OR-batch plan: disjunct terms in deterministic group order, carved
/// into index ranges of at most batch_capacity disjuncts — keeping the
/// ranges, rather than sealed opaque queries, is what lets recovery
/// re-split a failed batch. Batch size respects the source's term limit M:
/// each batch spends the selection terms once plus k terms per disjunct
/// (paper Section 3.2: |Q|/M searches).
struct BatchPlan {
  std::vector<std::vector<std::string>> disjunct_terms;
  struct Range {
    size_t begin;
    size_t end;
  };
  std::vector<Range> ranges;
};

Result<BatchPlan> PlanBatches(MethodContext& ctx, const KeyGroups& groups) {
  const ForeignJoinSpec& spec = *ctx.rspec.spec;
  const size_t selection_terms = spec.selections.size();
  const size_t terms_per_disjunct = spec.joins.size();
  const size_t m = ctx.sched.source().max_search_terms();
  if (selection_terms + terms_per_disjunct > m) {
    return Status::ResourceExhausted(
        "one disjunct already exceeds the term limit M=" + std::to_string(m));
  }
  const size_t batch_capacity =
      std::max<size_t>(1, (m - selection_terms) / terms_per_disjunct);
  BatchPlan plan;
  plan.disjunct_terms = groups.terms;
  for (size_t b = 0; b < plan.disjunct_terms.size(); b += batch_capacity) {
    plan.ranges.push_back(
        {b, std::min(b + batch_capacity, plan.disjunct_terms.size())});
  }
  return plan;
}

/// Spawns one search unit per OR-batch. A unit that fails transiently under
/// a recovering policy re-splits itself (RecoverBatch); on success it
/// records the batch's answer slot and hands every docid not yet claimed by
/// a completed batch to `on_new_docid` (under `mu`) — that is where the
/// fetch units chain on. The set of docids handed over is the distinct
/// docid set of all answers (schedule-independent); the deterministic
/// first-seen *order* is recomputed from `answers` in batch-major order by
/// the assembly stage after the drain.
void SpawnBatchSearches(
    MethodContext& ctx, StageScheduler::StageId search_stage,
    const BatchPlan& plan, std::vector<std::vector<std::string>>& answers,
    std::mutex& mu, std::function<void(const std::string&)> on_new_docid) {
  // This frame is gone before the units run (they execute inside the
  // caller's Wait, or on pool threads): every capture must be a value or a
  // pointer to caller-owned state — never a reference to a parameter or
  // local of THIS function (a by-reference capture of the value parameter
  // `search_stage` reads a dead stack slot).
  StageScheduler* sched = &ctx.sched;
  const ResolvedSpec* rspec = &ctx.rspec;
  const BatchPlan* batches = &plan;
  std::mutex* answers_mu = &mu;
  for (size_t b = 0; b < plan.ranges.size(); ++b) {
    std::vector<std::string>* answer = &answers[b];
    sched->Spawn(search_stage, b,
                 [sched, search_stage, rspec, batches, answer, answers_mu, b,
                  on_new_docid]() -> Status {
      Result<std::vector<std::string>> searched = sched->Search(
          search_stage, *BuildBatchQuery(*rspec, batches->disjunct_terms,
                                         batches->ranges[b].begin,
                                         batches->ranges[b].end));
      if (!searched.ok()) {
        if (!sched->policy().recovers() ||
            !IsTransientError(searched.status().code())) {
          return searched.status();
        }
        Result<std::vector<std::string>> recovered = RecoverBatch(
            *sched, search_stage, *rspec, batches->disjunct_terms,
            batches->ranges[b].begin, batches->ranges[b].end,
            searched.status());
        if (!recovered.ok()) return recovered.status();
        searched = std::move(recovered);
      }
      *answer = *std::move(searched);
      std::lock_guard<std::mutex> lock(*answers_mu);
      for (const std::string& docid : *answer) {
        on_new_docid(docid);
      }
      return Status::OK();
    });
  }
}

}  // namespace

/// Section 3.2 — semi-join: OR-batched searches under the term limit M,
/// doc-side semi-join output. Batches are issued concurrently and each
/// batch's fetches start the moment its answer arrives, overlapping the
/// remaining batch searches. Distinct docids are fetched once; assembly
/// replays first-seen batch-major order against a null left row.
Result<ForeignJoinResult> RunSJ(MethodContext& ctx) {
  const ResolvedSpec& rspec = ctx.rspec;
  const ForeignJoinSpec& spec = *rspec.spec;
  StageScheduler& sched = ctx.sched;
  const PredicateMask all = FullMask(spec.joins.size());

  const StageScheduler::StageId sd_keys = ctx.Stage(StageKind::kDistinctKeys);
  const StageScheduler::StageId sd_build = ctx.Stage(StageKind::kQueryBuild);
  const StageScheduler::StageId sd_search =
      ctx.Stage(StageKind::kSearchDispatch);
  const StageScheduler::StageId sd_fetch = ctx.Stage(StageKind::kFetch);
  const StageScheduler::StageId sd_assemble = ctx.Stage(StageKind::kAssemble);

  KeyGroups groups;
  {
    ScopedStageTimer timer(sched, sd_keys, 1);
    groups = GroupRowsByTerms(rspec, ctx.left_rows, all);
  }
  BatchPlan plan;
  {
    ScopedStageTimer timer(sched, sd_build, 1);
    TEXTJOIN_ASSIGN_OR_RETURN(plan, PlanBatches(ctx, groups));
  }

  std::vector<std::vector<std::string>> answers(plan.ranges.size());
  DocFetcher fetcher(sched, sd_fetch);
  std::mutex mu;
  std::unordered_map<std::string, size_t> docid_slot;
  SpawnBatchSearches(ctx, sd_search, plan, answers, mu,
                     [&](const std::string& docid) {
                       if (docid_slot.count(docid) != 0) return;
                       const size_t slot = spec.need_document_fields
                                               ? fetcher.Fetch(docid)
                                               : docid_slot.size();
                       docid_slot.emplace(docid, slot);
                     });
  TEXTJOIN_RETURN_IF_ERROR(sched.Wait());

  ForeignJoinResult result;
  result.schema = rspec.output_schema;
  ScopedStageTimer timer(sched, sd_assemble, 1);
  const Row null_left = NullLeftRow(spec.left_schema);
  std::set<std::string> seen;
  for (const std::vector<std::string>& docids : answers) {
    for (const std::string& docid : docids) {
      if (!seen.insert(docid).second) continue;
      if (spec.need_document_fields) {
        const Document& doc = fetcher.doc(docid_slot.at(docid));
        if (IsPlaceholderDoc(doc)) continue;  // Best-effort fetch skip.
        result.rows.push_back(
            ConcatRows(null_left, DocumentToRow(spec.text, doc)));
      } else {
        result.rows.push_back(
            ConcatRows(null_left, DocidOnlyRow(spec.text, docid)));
      }
    }
  }
  return result;
}

/// Section 3.2 — semi-join then relational text processing to recover the
/// (tuple, document) pairing for general (non-semi-join) queries. Same
/// batch machinery as RunSJ; every distinct docid's fetch chains a string-
/// match unit, so matching overlaps both the remaining fetches and the
/// remaining batch searches.
Result<ForeignJoinResult> RunSJRTP(MethodContext& ctx) {
  const ResolvedSpec& rspec = ctx.rspec;
  const ForeignJoinSpec& spec = *rspec.spec;
  StageScheduler& sched = ctx.sched;
  const PredicateMask all = FullMask(spec.joins.size());

  const StageScheduler::StageId sd_keys = ctx.Stage(StageKind::kDistinctKeys);
  const StageScheduler::StageId sd_build = ctx.Stage(StageKind::kQueryBuild);
  const StageScheduler::StageId sd_search =
      ctx.Stage(StageKind::kSearchDispatch);
  const StageScheduler::StageId sd_fetch = ctx.Stage(StageKind::kFetch);
  const StageScheduler::StageId sd_match = ctx.Stage(StageKind::kMatch);
  const StageScheduler::StageId sd_assemble = ctx.Stage(StageKind::kAssemble);

  KeyGroups groups;
  {
    ScopedStageTimer timer(sched, sd_keys, 1);
    groups = GroupRowsByTerms(rspec, ctx.left_rows, all);
  }
  BatchPlan plan;
  {
    ScopedStageTimer timer(sched, sd_build, 1);
    TEXTJOIN_ASSIGN_OR_RETURN(plan, PlanBatches(ctx, groups));
  }

  std::vector<std::vector<std::string>> answers(plan.ranges.size());
  DocFetcher fetcher(sched, sd_fetch);
  std::mutex mu;
  std::unordered_map<std::string, size_t> docid_slot;
  // Grown in lockstep with the fetch slots under `mu`; a deque keeps the
  // element addresses the match units write through stable.
  std::deque<std::vector<Row>> rows_per_slot;
  SpawnBatchSearches(
      ctx, sd_search, plan, answers, mu, [&](const std::string& docid) {
        if (docid_slot.count(docid) != 0) return;
        rows_per_slot.emplace_back();
        std::vector<Row>* out = &rows_per_slot.back();
        const size_t slot = fetcher.Fetch(
            docid, sd_match, [&, out](const Document& doc) -> Status {
              sched.ChargeRelationalMatches(sd_match, 1);
              Row doc_row = DocumentToRow(spec.text, doc);
              for (const Row& left : ctx.left_rows) {
                if (DocMatchesRow(rspec, left, doc, all)) {
                  out->push_back(ConcatRows(left, doc_row));
                }
              }
              return Status::OK();
            });
        docid_slot.emplace(docid, slot);
      });
  TEXTJOIN_RETURN_IF_ERROR(sched.Wait());

  ForeignJoinResult result;
  result.schema = rspec.output_schema;
  ScopedStageTimer timer(sched, sd_assemble, 1);
  std::set<std::string> seen;
  for (const std::vector<std::string>& docids : answers) {
    for (const std::string& docid : docids) {
      if (!seen.insert(docid).second) continue;
      for (Row& row : rows_per_slot[docid_slot.at(docid)]) {
        result.rows.push_back(std::move(row));
      }
    }
  }
  return result;
}

}  // namespace textjoin::pipeline
