#include "core/join_method_impls.h"

#include <set>

namespace textjoin::internal {

namespace {

/// Runs the OR-batched semi-join searches and returns the distinct matching
/// docids, in first-seen order. Batch size respects the source's term
/// limit M: each batch spends the selection terms once plus k terms per
/// disjunct (paper Section 3.2: |Q|/M searches). The chunked OR-batches
/// are independent searches and are issued concurrently across `pool`;
/// answers land in per-batch slots and are merged in batch order, so the
/// first-seen docid order (and hence every downstream result ordering) is
/// identical to serial execution.
Result<std::vector<std::string>> RunBatchedSemiJoin(
    const ResolvedSpec& rspec, const std::vector<Row>& left_rows,
    TextSource& source, ThreadPool* pool) {
  const ForeignJoinSpec& spec = *rspec.spec;
  const PredicateMask all = FullMask(spec.joins.size());
  const auto groups = GroupByTerms(rspec, left_rows, all);

  const size_t selection_terms = spec.selections.size();
  const size_t terms_per_disjunct = spec.joins.size();
  const size_t m = source.max_search_terms();
  if (selection_terms + terms_per_disjunct > m) {
    return Status::ResourceExhausted(
        "one disjunct already exceeds the term limit M=" + std::to_string(m));
  }
  const size_t batch_capacity =
      std::max<size_t>(1, (m - selection_terms) / terms_per_disjunct);

  // Materialize every batched search up front (deterministic group order).
  std::vector<TextQueryPtr> batches;
  std::vector<TextQueryPtr> pending;
  auto seal = [&]() {
    if (pending.empty()) return;
    std::vector<TextQueryPtr> children;
    for (const TextSelection& sel : spec.selections) {
      children.push_back(TextQuery::Term(sel.field, sel.term));
    }
    children.push_back(TextQuery::Or(std::move(pending)));
    pending.clear();
    batches.push_back(TextQuery::And(std::move(children)));
  };
  for (const auto& [terms, row_indices] : groups) {
    pending.push_back(BuildDisjunct(rspec, terms, all));
    if (pending.size() >= batch_capacity) seal();
  }
  seal();

  // Issue the batches concurrently, then merge serially in batch order.
  std::vector<std::vector<std::string>> answers(batches.size());
  TEXTJOIN_RETURN_IF_ERROR(
      ParallelStatusFor(pool, batches.size(), [&](size_t b) -> Status {
        TEXTJOIN_ASSIGN_OR_RETURN(answers[b], source.Search(*batches[b]));
        return Status::OK();
      }));

  std::vector<std::string> distinct_docids;
  std::set<std::string> seen;
  for (const std::vector<std::string>& docids : answers) {
    for (const std::string& docid : docids) {
      if (seen.insert(docid).second) distinct_docids.push_back(docid);
    }
  }
  return distinct_docids;
}

}  // namespace

Result<ForeignJoinResult> ExecuteSJ(const ResolvedSpec& rspec,
                                    const std::vector<Row>& left_rows,
                                    TextSource& source, ThreadPool* pool) {
  const ForeignJoinSpec& spec = *rspec.spec;
  if (spec.joins.empty()) {
    return Status::InvalidArgument("SJ requires text join predicates");
  }
  if (spec.left_columns_needed) {
    // Pure SJ cannot recover which tuple matched which document; the paper
    // applies it when "the query itself is a semi-join" (only docids are
    // projected). Use SJ+RTP otherwise.
    return Status::InvalidArgument(
        "SJ yields a doc-side semi-join; the query needs outer columns");
  }
  TEXTJOIN_ASSIGN_OR_RETURN(
      std::vector<std::string> docids,
      RunBatchedSemiJoin(rspec, left_rows, source, pool));
  ForeignJoinResult result;
  result.schema = rspec.output_schema;
  TEXTJOIN_ASSIGN_OR_RETURN(std::vector<Row> doc_rows,
                            FetchDocRows(rspec, docids, source, pool));
  const Row null_left = NullLeftRow(spec.left_schema);
  for (Row& doc_row : doc_rows) {
    result.rows.push_back(ConcatRows(null_left, doc_row));
  }
  return result;
}

Result<ForeignJoinResult> ExecuteSJRTP(const ResolvedSpec& rspec,
                                       const std::vector<Row>& left_rows,
                                       TextSource& source, ThreadPool* pool) {
  const ForeignJoinSpec& spec = *rspec.spec;
  if (spec.joins.empty()) {
    return Status::InvalidArgument("SJ+RTP requires text join predicates");
  }
  TEXTJOIN_ASSIGN_OR_RETURN(
      std::vector<std::string> docids,
      RunBatchedSemiJoin(rspec, left_rows, source, pool));
  // Fetch the distinct candidates once (fetches overlap across the pool),
  // then recover the pairing by relational text processing over all join
  // predicates.
  TEXTJOIN_ASSIGN_OR_RETURN(std::vector<Document> docs,
                            FetchDocs(docids, source, pool));
  ChargeRelationalMatches(source, docs.size());

  ForeignJoinResult result;
  result.schema = rspec.output_schema;
  const PredicateMask all = FullMask(spec.joins.size());
  std::vector<std::vector<Row>> rows_per_doc(docs.size());
  ParallelFor(pool, docs.size(), [&](size_t d) {
    const Document& doc = docs[d];
    Row doc_row = DocumentToRow(spec.text, doc);
    for (const Row& left : left_rows) {
      if (DocMatchesRow(rspec, left, doc, all)) {
        rows_per_doc[d].push_back(ConcatRows(left, doc_row));
      }
    }
  });
  for (std::vector<Row>& rows : rows_per_doc) {
    for (Row& row : rows) result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace textjoin::internal
