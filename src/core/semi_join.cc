#include "core/join_method_impls.h"

#include <algorithm>
#include <set>
#include <utility>

namespace textjoin::internal {

namespace {

/// Builds the OR-batched search over the disjuncts [begin, end): the
/// selection terms AND'ed with the OR of the per-combination disjuncts.
TextQueryPtr BuildBatchQuery(
    const ResolvedSpec& rspec,
    const std::vector<std::vector<std::string>>& disjunct_terms,
    size_t begin, size_t end) {
  const ForeignJoinSpec& spec = *rspec.spec;
  const PredicateMask all = FullMask(spec.joins.size());
  std::vector<TextQueryPtr> disjuncts;
  disjuncts.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    disjuncts.push_back(BuildDisjunct(rspec, disjunct_terms[i], all));
  }
  std::vector<TextQueryPtr> children;
  for (const TextSelection& sel : spec.selections) {
    children.push_back(TextQuery::Term(sel.field, sel.term));
  }
  children.push_back(TextQuery::Or(std::move(disjuncts)));
  return TextQuery::And(std::move(children));
}

/// Method-level recovery for an OR-batch whose search failed transiently
/// even through the resilience layer: split the disjunct range in half and
/// try each half, recursing on halves that fail again. The base case is a
/// single disjunct — one combination's per-tuple search; if even that
/// fails, best-effort drops the disjunct (recorded as a skipped batch
/// unit) while retry-then-fail propagates `failure`. Smaller searches give
/// genuinely better odds: fewer terms, shorter server time, and each
/// retry-wrapped sub-search gets a fresh retry budget.
Result<std::vector<std::string>> RecoverBatch(
    const ResolvedSpec& rspec,
    const std::vector<std::vector<std::string>>& disjunct_terms,
    size_t begin, size_t end, Status failure, TextSource& source,
    const FaultPolicy& policy) {
  if (end - begin == 1) {
    if (policy.best_effort()) {
      policy.NoteSkippedBatch(1);
      return std::vector<std::string>{};
    }
    return failure;
  }
  policy.NoteResplit();
  const size_t mid = begin + (end - begin) / 2;
  std::vector<std::string> docids;
  for (const auto& [half_begin, half_end] :
       {std::pair{begin, mid}, std::pair{mid, end}}) {
    Result<std::vector<std::string>> half = source.Search(
        *BuildBatchQuery(rspec, disjunct_terms, half_begin, half_end));
    if (!half.ok()) {
      if (!IsTransientError(half.status().code())) return half.status();
      TEXTJOIN_ASSIGN_OR_RETURN(
          half, RecoverBatch(rspec, disjunct_terms, half_begin, half_end,
                             half.status(), source, policy));
    }
    docids.insert(docids.end(), half->begin(), half->end());
  }
  return docids;
}

/// Runs the OR-batched semi-join searches and returns the distinct matching
/// docids, in first-seen order. Batch size respects the source's term
/// limit M: each batch spends the selection terms once plus k terms per
/// disjunct (paper Section 3.2: |Q|/M searches). The chunked OR-batches
/// are independent searches and are issued concurrently across `pool`;
/// answers land in per-batch slots and are merged in batch order, so the
/// first-seen docid order (and hence every downstream result ordering) is
/// identical to serial execution. A recovering policy re-splits failed
/// batches (see RecoverBatch) serially, in batch order, after the parallel
/// pass.
Result<std::vector<std::string>> RunBatchedSemiJoin(
    const ResolvedSpec& rspec, const std::vector<Row>& left_rows,
    TextSource& source, ThreadPool* pool, const FaultPolicy& policy) {
  const ForeignJoinSpec& spec = *rspec.spec;
  const PredicateMask all = FullMask(spec.joins.size());
  const auto groups = GroupByTerms(rspec, left_rows, all);

  const size_t selection_terms = spec.selections.size();
  const size_t terms_per_disjunct = spec.joins.size();
  const size_t m = source.max_search_terms();
  if (selection_terms + terms_per_disjunct > m) {
    return Status::ResourceExhausted(
        "one disjunct already exceeds the term limit M=" + std::to_string(m));
  }
  const size_t batch_capacity =
      std::max<size_t>(1, (m - selection_terms) / terms_per_disjunct);

  // Materialize the disjunct terms (deterministic group order) and carve
  // them into index ranges of at most batch_capacity disjuncts — keeping
  // the ranges, rather than sealed opaque queries, is what lets recovery
  // re-split a failed batch.
  std::vector<std::vector<std::string>> disjunct_terms;
  disjunct_terms.reserve(groups.size());
  for (const auto& [terms, row_indices] : groups) {
    disjunct_terms.push_back(terms);
  }
  struct BatchRange {
    size_t begin;
    size_t end;
  };
  std::vector<BatchRange> ranges;
  for (size_t b = 0; b < disjunct_terms.size(); b += batch_capacity) {
    ranges.push_back(
        {b, std::min(b + batch_capacity, disjunct_terms.size())});
  }

  // Issue the batches concurrently, capturing per-batch outcomes; merge
  // and recovery run serially in batch order afterwards.
  std::vector<std::vector<std::string>> answers(ranges.size());
  std::vector<Status> outcomes(ranges.size(), Status::OK());
  TEXTJOIN_RETURN_IF_ERROR(
      ParallelStatusFor(pool, ranges.size(), [&](size_t b) -> Status {
        Result<std::vector<std::string>> searched = source.Search(
            *BuildBatchQuery(rspec, disjunct_terms, ranges[b].begin,
                             ranges[b].end));
        if (searched.ok()) {
          answers[b] = *std::move(searched);
        } else {
          outcomes[b] = searched.status();
        }
        return Status::OK();
      }));
  for (size_t b = 0; b < ranges.size(); ++b) {
    if (outcomes[b].ok()) continue;
    if (!policy.recovers() || !IsTransientError(outcomes[b].code())) {
      return std::move(outcomes[b]);
    }
    TEXTJOIN_ASSIGN_OR_RETURN(
        answers[b],
        RecoverBatch(rspec, disjunct_terms, ranges[b].begin, ranges[b].end,
                     outcomes[b], source, policy));
  }

  std::vector<std::string> distinct_docids;
  std::set<std::string> seen;
  for (const std::vector<std::string>& docids : answers) {
    for (const std::string& docid : docids) {
      if (seen.insert(docid).second) distinct_docids.push_back(docid);
    }
  }
  return distinct_docids;
}

}  // namespace

Result<ForeignJoinResult> ExecuteSJ(const ResolvedSpec& rspec,
                                    const std::vector<Row>& left_rows,
                                    TextSource& source, ThreadPool* pool,
                                    const FaultPolicy& policy) {
  const ForeignJoinSpec& spec = *rspec.spec;
  if (spec.joins.empty()) {
    return Status::InvalidArgument("SJ requires text join predicates");
  }
  if (spec.left_columns_needed) {
    // Pure SJ cannot recover which tuple matched which document; the paper
    // applies it when "the query itself is a semi-join" (only docids are
    // projected). Use SJ+RTP otherwise.
    return Status::InvalidArgument(
        "SJ yields a doc-side semi-join; the query needs outer columns");
  }
  TEXTJOIN_ASSIGN_OR_RETURN(
      std::vector<std::string> docids,
      RunBatchedSemiJoin(rspec, left_rows, source, pool, policy));
  ForeignJoinResult result;
  result.schema = rspec.output_schema;
  TEXTJOIN_ASSIGN_OR_RETURN(std::vector<Row> doc_rows,
                            FetchDocRows(rspec, docids, source, pool, policy));
  const Row null_left = NullLeftRow(spec.left_schema);
  for (Row& doc_row : doc_rows) {
    result.rows.push_back(ConcatRows(null_left, doc_row));
  }
  return result;
}

Result<ForeignJoinResult> ExecuteSJRTP(const ResolvedSpec& rspec,
                                       const std::vector<Row>& left_rows,
                                       TextSource& source, ThreadPool* pool,
                                       const FaultPolicy& policy) {
  const ForeignJoinSpec& spec = *rspec.spec;
  if (spec.joins.empty()) {
    return Status::InvalidArgument("SJ+RTP requires text join predicates");
  }
  TEXTJOIN_ASSIGN_OR_RETURN(
      std::vector<std::string> docids,
      RunBatchedSemiJoin(rspec, left_rows, source, pool, policy));
  // Fetch the distinct candidates once (fetches overlap across the pool),
  // then recover the pairing by relational text processing over all join
  // predicates. Placeholder slots (best-effort fetch skips) are neither
  // scanned nor charged.
  TEXTJOIN_ASSIGN_OR_RETURN(std::vector<Document> docs,
                            FetchDocs(docids, source, pool, policy));
  uint64_t scanned = 0;
  for (const Document& doc : docs) {
    if (!IsPlaceholderDoc(doc)) ++scanned;
  }
  ChargeRelationalMatches(source, scanned);

  ForeignJoinResult result;
  result.schema = rspec.output_schema;
  const PredicateMask all = FullMask(spec.joins.size());
  std::vector<std::vector<Row>> rows_per_doc(docs.size());
  ParallelFor(pool, docs.size(), [&](size_t d) {
    const Document& doc = docs[d];
    if (IsPlaceholderDoc(doc)) return;
    Row doc_row = DocumentToRow(spec.text, doc);
    for (const Row& left : left_rows) {
      if (DocMatchesRow(rspec, left, doc, all)) {
        rows_per_doc[d].push_back(ConcatRows(left, doc_row));
      }
    }
  });
  for (std::vector<Row>& rows : rows_per_doc) {
    for (Row& row : rows) result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace textjoin::internal
