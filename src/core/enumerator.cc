#include "core/enumerator.h"

#include <algorithm>
#include <limits>

#include "common/string_util.h"
#include "core/cost_model.h"
#include "core/single_join_optimizer.h"

namespace textjoin {
namespace {

/// One relational join conjunct with the set of relations it references.
struct ClassifiedConjunct {
  const Expr* expr = nullptr;
  uint64_t relation_mask = 0;
};

/// Everything the DP needs, resolved once per Optimize call.
struct QueryContext {
  const FederatedQuery* query = nullptr;
  const Catalog* catalog = nullptr;
  const StatsRegistry* stats = nullptr;
  const EnumeratorOptions* options = nullptr;
  double num_documents = 0;
  double max_terms = 0;

  size_t n = 0;            ///< Number of stored relations.
  uint64_t text_bit = 0;   ///< Entity bit of the text source (0 if none).
  uint64_t text_required_mask = 0;  ///< Relations with text join predicates.

  std::vector<const Table*> tables;              // per relation
  std::vector<const TableStats*> table_stats;    // per relation
  std::vector<std::vector<const Expr*>> pushed;  // per relation selections
  std::vector<ClassifiedConjunct> conjuncts;

  std::vector<size_t> text_pred_relation;           // per text join pred
  std::vector<TextPredicateStats> text_pred_stats;  // s_i, f_i (no N_i)

  double selection_match_docs = 0;
  double selection_postings = 0;
  double num_selection_terms = 0;

  MethodApplicability applicability;
};

/// Finds the relation (by index) that a qualified column belongs to.
Result<size_t> RelationOfColumn(const FederatedQuery& query,
                                const std::string& ref) {
  const size_t dot = ref.find('.');
  if (dot == std::string::npos) {
    return Status::InvalidArgument("column '" + ref +
                                   "' must be qualified for optimization");
  }
  const std::string qualifier = ref.substr(0, dot);
  for (size_t i = 0; i < query.relations.size(); ++i) {
    if (EqualsIgnoreCase(query.relations[i].name(), qualifier)) return i;
  }
  return Status::NotFound("column '" + ref +
                          "' does not belong to any relation in the query");
}

/// Selectivity of a pushed-down (single relation) predicate.
double FilterSelectivity(const Expr& expr, const Schema& schema,
                         const TableStats& stats) {
  if (const auto* cmp = dynamic_cast<const ComparisonExpr*>(&expr)) {
    const auto* lcol = dynamic_cast<const ColumnRefExpr*>(&cmp->left());
    const auto* rcol = dynamic_cast<const ColumnRefExpr*>(&cmp->right());
    const ColumnRefExpr* col = lcol != nullptr ? lcol : rcol;
    if (col != nullptr && (lcol == nullptr || rcol == nullptr)) {
      Result<size_t> idx = schema.Resolve(col->ref());
      if (idx.ok()) {
        const auto* lit = dynamic_cast<const LiteralExpr*>(
            lcol != nullptr ? &cmp->right() : &cmp->left());
        // Flip the operator when the literal is on the left ("3 < col").
        CompareOp op = cmp->op();
        if (lcol == nullptr) {
          switch (op) {
            case CompareOp::kLt: op = CompareOp::kGt; break;
            case CompareOp::kLe: op = CompareOp::kGe; break;
            case CompareOp::kGt: op = CompareOp::kLt; break;
            case CompareOp::kGe: op = CompareOp::kLe; break;
            default: break;
          }
        }
        return stats.CompareSelectivity(
            op, *idx, lit != nullptr ? &lit->value() : nullptr);
      }
    }
    return 1.0 / 3.0;
  }
  if (const auto* logical = dynamic_cast<const LogicalExpr*>(&expr)) {
    switch (logical->op()) {
      case LogicalOp::kAnd: {
        double sel = 1.0;
        for (const ExprPtr& child : logical->children()) {
          sel *= FilterSelectivity(*child, schema, stats);
        }
        return sel;
      }
      case LogicalOp::kOr: {
        double sel = 0.0;
        for (const ExprPtr& child : logical->children()) {
          sel += FilterSelectivity(*child, schema, stats);
        }
        return std::min(1.0, sel);
      }
      case LogicalOp::kNot:
        return 1.0 -
               FilterSelectivity(*logical->children()[0], schema, stats);
    }
  }
  if (dynamic_cast<const LikeExpr*>(&expr) != nullptr) return 0.1;
  return 0.3;
}

/// Distinct count of a column in a base relation (0 if unresolvable).
double BaseDistinct(const QueryContext& ctx, const std::string& ref) {
  Result<size_t> rel = RelationOfColumn(*ctx.query, ref);
  if (!rel.ok()) return 0;
  const Schema schema =
      ctx.tables[*rel]->schema().WithQualifier(ctx.query->relations[*rel]
                                                   .name());
  Result<size_t> idx = schema.Resolve(ref);
  if (!idx.ok()) return 0;
  return static_cast<double>(ctx.table_stats[*rel]->NumDistinct(*idx));
}

/// Selectivity of a relational join conjunct.
double ConjunctSelectivity(const QueryContext& ctx, const Expr& expr) {
  if (const auto* cmp = dynamic_cast<const ComparisonExpr*>(&expr)) {
    const auto* lcol = dynamic_cast<const ColumnRefExpr*>(&cmp->left());
    const auto* rcol = dynamic_cast<const ColumnRefExpr*>(&cmp->right());
    if (lcol != nullptr && rcol != nullptr) {
      const double dl = std::max(1.0, BaseDistinct(ctx, lcol->ref()));
      const double dr = std::max(1.0, BaseDistinct(ctx, rcol->ref()));
      const double eq_sel = 1.0 / std::max(dl, dr);
      switch (cmp->op()) {
        case CompareOp::kEq:
          return eq_sel;
        case CompareOp::kNe:
          return 1.0 - eq_sel;
        default:
          return 1.0 / 3.0;
      }
    }
  }
  return 0.3;
}

/// Builds the Section-4 stats for a probe/foreign-join over `child`,
/// restricted to predicate indices `preds` (empty = all).
ForeignJoinStats BuildStats(const QueryContext& ctx, const PlanNode& child,
                            const std::vector<size_t>& preds) {
  ForeignJoinStats stats;
  stats.num_tuples = std::max(0.0, child.est_rows);
  stats.num_documents = ctx.num_documents;
  stats.max_terms = ctx.max_terms;
  stats.correlation_g = ctx.options->correlation_g;
  stats.need_document_fields = ctx.applicability.need_document_fields;
  stats.selection_match_docs = ctx.selection_match_docs;
  stats.selection_postings = ctx.selection_postings;
  stats.num_selection_terms = ctx.num_selection_terms;
  for (size_t i : preds) {
    TextPredicateStats ps = ctx.text_pred_stats[i];
    auto it = child.text_pred_distinct.find(i);
    ps.num_distinct = it != child.text_pred_distinct.end()
                          ? std::max(1.0, it->second)
                          : std::max(1.0, child.est_rows);
    if (child.probed_preds.count(i) != 0) {
      // Every surviving combination is known to match.
      ps.selectivity = 1.0;
    }
    stats.predicates.push_back(ps);
  }
  return stats;
}

/// Pareto insertion over (est_cost, est_rows).
void AddPlan(std::vector<std::shared_ptr<PlanNode>>& frontier,
             std::shared_ptr<PlanNode> plan, const EnumeratorOptions& options,
             EnumeratorReport& report) {
  ++report.plans_generated;
  for (const auto& existing : frontier) {
    if (existing->est_cost <= plan->est_cost &&
        existing->est_rows <= plan->est_rows) {
      return;  // dominated
    }
  }
  frontier.erase(
      std::remove_if(frontier.begin(), frontier.end(),
                     [&](const std::shared_ptr<PlanNode>& existing) {
                       return plan->est_cost <= existing->est_cost &&
                              plan->est_rows <= existing->est_rows;
                     }),
      frontier.end());
  frontier.push_back(std::move(plan));
  if (frontier.size() > options.max_pareto_plans) {
    // Keep the cheapest plans (the plain left-deep plan is always among
    // them, preserving the never-worse guarantee).
    std::sort(frontier.begin(), frontier.end(),
              [](const auto& a, const auto& b) {
                return a->est_cost < b->est_cost;
              });
    frontier.resize(options.max_pareto_plans);
  }
}

/// Builds the scan plan (with pushed selections and estimates) for one
/// relation.
std::shared_ptr<PlanNode> BuildScan(const QueryContext& ctx, size_t r) {
  std::vector<ExprPtr> filters;
  for (const Expr* f : ctx.pushed[r]) filters.push_back(f->Clone());
  auto node = MakeScanNode(ctx.query->relations[r].table_name,
                           ctx.query->relations[r].name(),
                           ctx.tables[r]->schema(), std::move(filters));
  const TableStats& stats = *ctx.table_stats[r];
  double sel = 1.0;
  for (const Expr* f : ctx.pushed[r]) {
    sel *= FilterSelectivity(*f, node->output_schema, stats);
  }
  node->est_rows = static_cast<double>(stats.num_rows()) * sel;
  node->est_cost = ctx.options->cpu_cost_per_tuple *
                   static_cast<double>(stats.num_rows());
  for (size_t p = 0; p < ctx.text_pred_relation.size(); ++p) {
    if (ctx.text_pred_relation[p] != r) continue;
    const double d = BaseDistinct(ctx, ctx.query->text_joins[p].column_ref);
    node->text_pred_distinct[p] = std::min(d, std::max(1.0, node->est_rows));
  }
  return node;
}

/// Probe-node construction with estimates.
std::shared_ptr<PlanNode> BuildProbe(const QueryContext& ctx,
                                     PlanNodePtr child,
                                     std::vector<size_t> preds) {
  ForeignJoinStats stats = BuildStats(ctx, *child, preds);
  CostModel model(ctx.options->cost_params, stats);
  const PredicateMask mask = FullMask(preds.size());
  const double probe_cost = model.CostProbe(mask);
  const double joint_sel = model.JointSelectivity(mask);

  auto node = MakeProbeNode(child, preds);
  node->est_rows = child->est_rows * joint_sel;
  node->est_cost = child->est_cost + probe_cost;
  node->text_pred_distinct = child->text_pred_distinct;
  node->probed_preds = child->probed_preds;
  for (size_t i = 0; i < preds.size(); ++i) {
    const size_t p = preds[i];
    node->probed_preds.insert(p);
    auto it = node->text_pred_distinct.find(p);
    if (it != node->text_pred_distinct.end()) {
      it->second =
          std::max(0.0, it->second * ctx.text_pred_stats[p].selectivity);
    }
  }
  for (auto& [p, d] : node->text_pred_distinct) {
    d = std::min(d, std::max(1.0, node->est_rows));
  }
  return node;
}

/// All probe-pred subsets of size <= max_probe_columns from `available`.
std::vector<std::vector<size_t>> ProbeSubsets(
    const std::vector<size_t>& available, size_t max_cols) {
  std::vector<std::vector<size_t>> subsets;
  const size_t k = available.size();
  if (k == 0) return subsets;
  for (uint32_t mask = 1; mask < (1u << k); ++mask) {
    const size_t bits = static_cast<size_t>(__builtin_popcount(mask));
    if (bits > max_cols) continue;
    std::vector<size_t> subset;
    for (size_t i = 0; i < k; ++i) {
      if ((mask & (1u << i)) != 0) subset.push_back(available[i]);
    }
    subsets.push_back(std::move(subset));
  }
  return subsets;
}

}  // namespace

Result<PlanNodePtr> Enumerator::Optimize(const FederatedQuery& query) {
  report_ = EnumeratorReport{};
  if (query.relations.empty()) {
    return Status::InvalidArgument("query has no stored relations");
  }
  if (query.relations.size() > 16) {
    return Status::InvalidArgument("too many relations for the enumerator");
  }

  QueryContext ctx;
  ctx.query = &query;
  ctx.catalog = catalog_;
  ctx.stats = stats_;
  ctx.options = &options_;
  ctx.num_documents = static_cast<double>(num_documents_);
  ctx.max_terms = static_cast<double>(max_search_terms_);
  ctx.n = query.relations.size();
  ctx.text_bit = query.has_text_relation ? (uint64_t{1} << ctx.n) : 0;

  // Resolve tables and their statistics.
  for (const RelationRef& rel : query.relations) {
    TEXTJOIN_ASSIGN_OR_RETURN(Table * table,
                              catalog_->GetTable(rel.table_name));
    ctx.tables.push_back(table);
    TEXTJOIN_ASSIGN_OR_RETURN(const TableStats* ts,
                              stats_->GetTableStats(rel.table_name));
    ctx.table_stats.push_back(ts);
  }

  // Classify relational predicates.
  ctx.pushed.resize(ctx.n);
  for (const ExprPtr& pred : query.relational_predicates) {
    std::vector<std::string> columns;
    pred->CollectColumns(columns);
    uint64_t relmask = 0;
    for (const std::string& ref : columns) {
      TEXTJOIN_ASSIGN_OR_RETURN(size_t rel, RelationOfColumn(query, ref));
      relmask |= uint64_t{1} << rel;
    }
    if (relmask == 0) {
      return Status::InvalidArgument("constant predicate '" +
                                     pred->ToString() +
                                     "' is not supported");
    }
    if (__builtin_popcountll(relmask) == 1) {
      ctx.pushed[static_cast<size_t>(__builtin_ctzll(relmask))].push_back(
          pred.get());
    } else {
      ctx.conjuncts.push_back({pred.get(), relmask});
    }
  }

  // Text predicates and their statistics.
  for (const TextJoinPredicate& pred : query.text_joins) {
    TEXTJOIN_ASSIGN_OR_RETURN(size_t rel,
                              RelationOfColumn(query, pred.column_ref));
    ctx.text_pred_relation.push_back(rel);
    ctx.text_required_mask |= uint64_t{1} << rel;
    TEXTJOIN_ASSIGN_OR_RETURN(
        TextPredicateStats ps,
        stats_->GetTextJoinStats(pred.column_ref, pred.field));
    ctx.text_pred_stats.push_back(ps);
  }
  if (query.has_text_relation) {
    double joint_docs = ctx.num_documents;
    for (const TextSelection& sel : query.text_selections) {
      TEXTJOIN_ASSIGN_OR_RETURN(
          TextSelectionStats ss,
          stats_->GetTextSelectionStats(sel.term, sel.field));
      joint_docs = std::min(joint_docs, ss.match_docs);
      ctx.selection_postings += ss.postings;
      ctx.num_selection_terms += 1;
    }
    ctx.selection_match_docs =
        query.text_selections.empty() ? 0.0 : joint_docs;
  }

  // Method applicability for the foreign join.
  ctx.applicability.has_selections = !query.text_selections.empty();
  ctx.applicability.need_document_fields = query.NeedsDocumentFields();
  bool needs_left = query.output_columns.empty();
  for (const std::string& ref : query.output_columns) {
    const size_t dot = ref.find('.');
    const std::string qualifier =
        dot == std::string::npos ? "" : ref.substr(0, dot);
    if (!query.has_text_relation ||
        !EqualsIgnoreCase(qualifier, query.text.alias)) {
      needs_left = true;
    }
  }
  ctx.applicability.left_columns_needed = needs_left;

  // ---- dynamic programming over entity subsets ----
  const size_t total_entities = ctx.n + (query.has_text_relation ? 1 : 0);
  const uint64_t full_mask = (uint64_t{1} << total_entities) - 1;
  std::vector<std::vector<std::shared_ptr<PlanNode>>> table(full_mask + 1);

  for (size_t r = 0; r < ctx.n; ++r) {
    AddPlan(table[uint64_t{1} << r], BuildScan(ctx, r), options_, report_);
  }

  for (uint64_t mask = 1; mask <= full_mask; ++mask) {
    if (__builtin_popcountll(mask) < 2) continue;
    // Masks with the text source require every text-predicate relation.
    if ((mask & ctx.text_bit) != 0 &&
        (mask & ctx.text_required_mask) != ctx.text_required_mask) {
      continue;
    }
    for (size_t e = 0; e < total_entities; ++e) {
      const uint64_t ebit = uint64_t{1} << e;
      if ((mask & ebit) == 0) continue;
      const uint64_t sub = mask ^ ebit;
      if (sub == 0 || table[sub].empty()) continue;
      ++report_.join_tasks;

      const bool e_is_text = ebit == ctx.text_bit;
      if (e_is_text) {
        // Foreign join: every text-predicate relation must be in `sub`.
        if ((sub & ctx.text_required_mask) != ctx.text_required_mask) {
          continue;
        }
        for (const auto& subplan : table[sub]) {
          std::vector<size_t> all_preds(query.text_joins.size());
          for (size_t i = 0; i < all_preds.size(); ++i) all_preds[i] = i;
          ForeignJoinStats stats = BuildStats(ctx, *subplan, all_preds);
          CostModel model(options_.cost_params, stats);
          SingleJoinOptimizer optimizer(&model);
          Result<MethodChoice> choice = optimizer.Choose(ctx.applicability);
          if (!choice.ok()) return choice.status();
          auto node = MakeForeignJoinNode(subplan, query, *choice);
          node->est_rows =
              stats.num_tuples *
              model.JointFanout(FullMask(stats.predicates.size()));
          node->est_cost = subplan->est_cost + choice->predicted_cost;
          node->text_pred_distinct = subplan->text_pred_distinct;
          node->probed_preds = subplan->probed_preds;
          AddPlan(table[mask], std::move(node), options_, report_);
        }
        continue;
      }

      // Relational join of `sub` with relation e. Gather the conjuncts
      // that become applicable exactly here.
      std::vector<const Expr*> applicable;
      for (const ClassifiedConjunct& c : ctx.conjuncts) {
        if ((c.relation_mask & ~mask) != 0) continue;      // not covered yet
        if ((c.relation_mask & ebit) == 0) continue;       // applied earlier
        if ((c.relation_mask & sub) == 0) continue;        // one-sided
        applicable.push_back(c.expr);
      }

      const auto& base_frontier = table[ebit];
      if (base_frontier.empty()) continue;
      const std::shared_ptr<PlanNode>& base_scan = base_frontier.front();

      const bool probes_allowed =
          options_.enable_probes && query.has_text_relation &&
          (sub & ctx.text_bit) == 0;

      for (const auto& subplan : table[sub]) {
        // Left-side variants: plain, plus probed variants (alternative b/d).
        std::vector<std::shared_ptr<PlanNode>> left_variants = {subplan};
        if (probes_allowed) {
          std::vector<size_t> available;
          for (size_t p = 0; p < ctx.text_pred_relation.size(); ++p) {
            if ((sub & (uint64_t{1} << ctx.text_pred_relation[p])) != 0 &&
                subplan->probed_preds.count(p) == 0) {
              available.push_back(p);
            }
          }
          for (auto& preds :
               ProbeSubsets(available, options_.max_probe_columns)) {
            left_variants.push_back(BuildProbe(ctx, subplan, preds));
          }
        }
        // Right-side variants: plain scan, plus probed scans (c/d).
        std::vector<std::shared_ptr<PlanNode>> right_variants = {base_scan};
        if (probes_allowed) {
          std::vector<size_t> available;
          for (size_t p = 0; p < ctx.text_pred_relation.size(); ++p) {
            if (ctx.text_pred_relation[p] == e) available.push_back(p);
          }
          for (auto& preds :
               ProbeSubsets(available, options_.max_probe_columns)) {
            right_variants.push_back(BuildProbe(ctx, base_scan, preds));
          }
        }

        for (const auto& lv : left_variants) {
          for (const auto& rv : right_variants) {
            // Hash-join keys: equi conjuncts with one column per side.
            std::vector<HashJoin::KeyPair> keys;
            std::vector<ExprPtr> conjunct_exprs;
            double sel = 1.0;
            for (const Expr* c : applicable) {
              sel *= ConjunctSelectivity(ctx, *c);
              bool used_as_key = false;
              if (const auto* cmp =
                      dynamic_cast<const ComparisonExpr*>(c)) {
                const auto* a =
                    dynamic_cast<const ColumnRefExpr*>(&cmp->left());
                const auto* b =
                    dynamic_cast<const ColumnRefExpr*>(&cmp->right());
                if (cmp->op() == CompareOp::kEq && a != nullptr &&
                    b != nullptr) {
                  const bool a_left = lv->output_schema.Resolve(a->ref()).ok();
                  const bool b_left = lv->output_schema.Resolve(b->ref()).ok();
                  if (a_left && !b_left) {
                    keys.push_back({a->ref(), b->ref()});
                    used_as_key = true;
                  } else if (b_left && !a_left) {
                    keys.push_back({b->ref(), a->ref()});
                    used_as_key = true;
                  }
                }
              }
              if (!used_as_key) conjunct_exprs.push_back(c->Clone());
            }
            const bool use_hash = !keys.empty();
            auto node = MakeRelationalJoinNode(lv, rv,
                                               std::move(conjunct_exprs),
                                               use_hash, keys);
            node->est_rows = std::max(0.0, lv->est_rows * rv->est_rows * sel);
            const double join_cpu =
                use_hash ? (lv->est_rows + rv->est_rows)
                         : (std::max(1.0, lv->est_rows) *
                            std::max(1.0, rv->est_rows));
            node->est_cost = lv->est_cost + rv->est_cost +
                             options_.cpu_cost_per_tuple *
                                 (join_cpu + node->est_rows);
            node->text_pred_distinct = lv->text_pred_distinct;
            for (const auto& [p, d] : rv->text_pred_distinct) {
              node->text_pred_distinct[p] = d;
            }
            for (auto& [p, d] : node->text_pred_distinct) {
              d = std::min(d, std::max(1.0, node->est_rows));
            }
            node->probed_preds = lv->probed_preds;
            node->probed_preds.insert(rv->probed_preds.begin(),
                                      rv->probed_preds.end());
            AddPlan(table[mask], std::move(node), options_, report_);
          }
        }
      }
    }
  }

  uint64_t final_mask = full_mask;
  if (table[final_mask].empty()) {
    return Status::Internal("enumeration produced no plan for the query");
  }
  for (const auto& frontier : table) report_.plans_retained += frontier.size();

  const auto& frontier = table[final_mask];
  const auto best = std::min_element(
      frontier.begin(), frontier.end(), [](const auto& a, const auto& b) {
        return a->est_cost < b->est_cost;
      });
  return PlanNodePtr(*best);
}

}  // namespace textjoin
