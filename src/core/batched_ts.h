#ifndef TEXTJOIN_CORE_BATCHED_TS_H_
#define TEXTJOIN_CORE_BATCHED_TS_H_

#include <vector>

#include "connector/cooperative.h"
#include "core/join_methods.h"

/// \file
/// Batched tuple substitution — the join method the Section-8 batched-
/// invocation extension enables. Semantically identical to TS (one
/// conjunctive search per distinct join-column combination, each answer
/// attributed to its own combination), but searches are shipped
/// max_batch_size() at a time, so the invocation component of the cost
/// drops from c_i * N_K to c_i * ceil(N_K / B).

namespace textjoin {

/// Executes tuple substitution over a batching source. Produces exactly
/// the same result rows as ExecuteForeignJoin(kTS, ...). Runs on the
/// staged pipeline (serial scheduler — the batch protocol is one
/// conversation); `stage_profile`, when non-null, receives the per-stage
/// account.
Result<ForeignJoinResult> ExecuteTupleSubstitutionBatched(
    const ForeignJoinSpec& spec, const std::vector<Row>& left_rows,
    CooperativeTextSource& source,
    pipeline::PipelineProfile* stage_profile = nullptr);

/// The corresponding cost formula: CostTS with the invocation term divided
/// by the batch size B.
double CostTSBatched(const CostModel& model, size_t batch_size);

}  // namespace textjoin

#endif  // TEXTJOIN_CORE_BATCHED_TS_H_
