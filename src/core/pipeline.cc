#include "core/pipeline.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <utility>

#include "common/text_match.h"
#include "connector/remote_text_source.h"

namespace textjoin::pipeline {

namespace {

/// Source-operation time accrued on this thread inside the innermost
/// currently-running unit or ScopedStageTimer scope. OpTimer adds to it;
/// unit / scope self-time subtracts it, so per-stage wall-clock figures are
/// non-overlapping and sum to total busy time.
thread_local uint64_t tls_op_ns = 0;

uint64_t NsSince(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

// ---------------------------------------------------------------------------
// Stage taxonomy

const char* StageKindName(StageKind kind) {
  switch (kind) {
    case StageKind::kDistinctKeys:
      return "DistinctKeys";
    case StageKind::kProbeFilter:
      return "ProbeFilter";
    case StageKind::kQueryBuild:
      return "QueryBuild";
    case StageKind::kSearchDispatch:
      return "SearchDispatch";
    case StageKind::kFetch:
      return "Fetch";
    case StageKind::kMatch:
      return "Match";
    case StageKind::kAssemble:
      return "Assemble";
  }
  return "?";
}

std::string StageDesc::ToString() const {
  std::string out = StageKindName(kind);
  if (!detail.empty()) {
    out += '(';
    out += detail;
    out += ')';
  }
  return out;
}

std::string StageStats::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), ": units=%llu wall=%.2fms",
                static_cast<unsigned long long>(units), wall_seconds * 1e3);
  std::string out = desc.ToString() + buf;
  const auto append = [&out](const char* name, uint64_t value) {
    if (value == 0) return;
    out += ' ';
    out += name;
    out += '=';
    out += std::to_string(value);
  };
  append("inv", invocations);
  append("short", short_docs);
  append("long", long_docs);
  append("rmatch", relational_matches);
  append("chit", cache_hits);
  append("cmiss", cache_misses);
  append("cwait", cache_coalesced);
  return out;
}

std::string PipelineProfile::ToString() const {
  std::string out;
  for (const StageStats& stage : stages) {
    if (!out.empty()) out += '\n';
    out += stage.ToString();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Resolved specs & query building

Result<ResolvedSpec> ResolveSpec(const ForeignJoinSpec& spec) {
  ResolvedSpec rspec;
  rspec.spec = &spec;
  for (const TextJoinPredicate& pred : spec.joins) {
    TEXTJOIN_ASSIGN_OR_RETURN(size_t idx,
                              spec.left_schema.Resolve(pred.column_ref));
    rspec.join_columns.push_back(idx);
    if (!spec.text.HasField(pred.field)) {
      return Status::NotFound("text field '" + pred.field +
                              "' not declared on " + spec.text.alias);
    }
  }
  for (const TextSelection& sel : spec.selections) {
    if (!spec.text.HasField(sel.field)) {
      return Status::NotFound("text field '" + sel.field +
                              "' not declared on " + spec.text.alias);
    }
  }
  rspec.output_schema = spec.left_schema.Concat(spec.text.ToSchema());
  return rspec;
}

std::optional<std::vector<std::string>> JoinTerms(const ResolvedSpec& rspec,
                                                  const Row& row,
                                                  PredicateMask mask) {
  std::vector<std::string> terms;
  for (size_t i = 0; i < rspec.join_columns.size(); ++i) {
    if ((mask & (1u << i)) == 0) continue;
    const Value& v = row.at(rspec.join_columns[i]);
    if (v.type() != ValueType::kString) return std::nullopt;
    terms.push_back(v.AsString());
  }
  return terms;
}

namespace {

// Appends term nodes for the predicates in `mask` to `children`.
void AppendJoinTermNodes(const ResolvedSpec& rspec,
                         const std::vector<std::string>& terms,
                         PredicateMask mask,
                         std::vector<TextQueryPtr>& children) {
  size_t term_index = 0;
  for (size_t i = 0; i < rspec.spec->joins.size(); ++i) {
    if ((mask & (1u << i)) == 0) continue;
    children.push_back(
        TextQuery::Term(rspec.spec->joins[i].field, terms.at(term_index)));
    ++term_index;
  }
}

}  // namespace

TextQueryPtr BuildSearch(const ResolvedSpec& rspec,
                         const std::vector<std::string>& terms,
                         PredicateMask mask) {
  std::vector<TextQueryPtr> children;
  for (const TextSelection& sel : rspec.spec->selections) {
    children.push_back(TextQuery::Term(sel.field, sel.term));
  }
  AppendJoinTermNodes(rspec, terms, mask, children);
  TEXTJOIN_CHECK(!children.empty(), "search with no predicates");
  return TextQuery::And(std::move(children));
}

TextQueryPtr BuildSelectionSearch(const ForeignJoinSpec& spec) {
  TEXTJOIN_CHECK(!spec.selections.empty(),
                 "selection search needs text selections");
  std::vector<TextQueryPtr> children;
  for (const TextSelection& sel : spec.selections) {
    children.push_back(TextQuery::Term(sel.field, sel.term));
  }
  return TextQuery::And(std::move(children));
}

TextQueryPtr BuildDisjunct(const ResolvedSpec& rspec,
                           const std::vector<std::string>& terms,
                           PredicateMask mask) {
  std::vector<TextQueryPtr> children;
  AppendJoinTermNodes(rspec, terms, mask, children);
  TEXTJOIN_CHECK(!children.empty(), "disjunct with no join terms");
  return TextQuery::And(std::move(children));
}

Row DocumentToRow(const TextRelationDecl& text, const Document& doc) {
  Row row;
  row.reserve(text.fields.size() + 1);
  row.push_back(Value::Str(doc.docid));
  for (const std::string& field : text.fields) {
    row.push_back(Value::Str(JoinFieldValues(doc.FieldValues(field))));
  }
  return row;
}

Row DocidOnlyRow(const TextRelationDecl& text, const std::string& docid) {
  Row row(text.fields.size() + 1, Value::Null());
  row[0] = Value::Str(docid);
  return row;
}

Row NullLeftRow(const Schema& left_schema) {
  return Row(left_schema.num_columns(), Value::Null());
}

bool DocMatchesRow(const ResolvedSpec& rspec, const Row& row,
                   const Document& doc, PredicateMask mask) {
  for (size_t i = 0; i < rspec.spec->joins.size(); ++i) {
    if ((mask & (1u << i)) == 0) continue;
    const Value& v = row.at(rspec.join_columns[i]);
    if (v.type() != ValueType::kString) return false;
    const std::string flattened =
        JoinFieldValues(doc.FieldValues(rspec.spec->joins[i].field));
    if (!TermMatchesFieldText(v.AsString(), flattened)) return false;
  }
  return true;
}

std::map<std::vector<std::string>, std::vector<size_t>> GroupByTerms(
    const ResolvedSpec& rspec, const std::vector<Row>& rows,
    PredicateMask mask) {
  std::map<std::vector<std::string>, std::vector<size_t>> groups;
  for (size_t r = 0; r < rows.size(); ++r) {
    std::optional<std::vector<std::string>> terms =
        JoinTerms(rspec, rows[r], mask);
    if (!terms) continue;
    groups[*terms].push_back(r);
  }
  return groups;
}

KeyGroups GroupRowsByTerms(const ResolvedSpec& rspec,
                           const std::vector<Row>& rows, PredicateMask mask) {
  KeyGroups out;
  auto groups = GroupByTerms(rspec, rows, mask);
  out.terms.reserve(groups.size());
  out.rows.reserve(groups.size());
  for (auto& [terms, row_indices] : groups) {
    out.terms.push_back(terms);
    out.rows.push_back(std::move(row_indices));
  }
  return out;
}

Status ValidateProbeMask(const ForeignJoinSpec& spec, PredicateMask mask) {
  if (mask == 0) {
    return Status::InvalidArgument("probe mask must select at least one "
                                   "join predicate");
  }
  const PredicateMask all = FullMask(spec.joins.size());
  if ((mask & ~all) != 0) {
    return Status::OutOfRange("probe mask " + MaskToString(mask) +
                              " selects predicates beyond the " +
                              std::to_string(spec.joins.size()) +
                              " in the spec");
  }
  return Status::OK();
}

void ChargeRelationalMatches(TextSource& source, uint64_t docs_scanned) {
  if (MeteredTextSource* metered = UnwrapMetered(&source)) {
    metered->charging_meter().ChargeRelationalMatches(docs_scanned);
  }
}

// ---------------------------------------------------------------------------
// Scheduler

/// Per-stage accounting. Owned by the scheduler State (so pool jobs that
/// outlive the scheduler object can still charge it); addressed by the
/// opaque StageId pointer. `rank` is the registration order, the major key
/// of deterministic failure selection.
struct StageCounters {
  StageDesc desc;
  size_t rank = 0;
  std::atomic<uint64_t> units{0};
  std::atomic<uint64_t> wall_ns{0};
  std::atomic<uint64_t> invocations{0};
  std::atomic<uint64_t> short_docs{0};
  std::atomic<uint64_t> long_docs{0};
  std::atomic<uint64_t> relational_matches{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cache_misses{0};
  std::atomic<uint64_t> cache_coalesced{0};
};

struct StageScheduler::Task {
  StageCounters* stage = nullptr;
  uint64_t ordinal = 0;
  std::function<Status()> fn;
};

/// Shared with every drain job handed to the pool: a job enqueued behind a
/// long run may execute after the scheduler object is gone, so everything
/// it touches lives here behind a shared_ptr (the ParallelFor LoopState
/// pattern).
struct StageScheduler::State {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Task> queue;
  size_t pending = 0;  ///< Queued + currently running units.
  std::deque<std::unique_ptr<StageCounters>> stages;

  // Sticky deterministic failure: minimum (stage rank, ordinal).
  bool failed = false;
  size_t fail_rank = 0;
  uint64_t fail_ordinal = 0;
  Status failure;

  // Cancellation: the query token (propagated to unit threads via
  // ExecuteTask's CancelScope) and the policy used to account drained
  // units. Lives here because pool drain jobs address tasks through State;
  // any job that actually pops a task completes before the scheduler's
  // destructor returns, so the policy pointer stays valid whenever it is
  // dereferenced. Written once before any unit spawns (SetCancelToken
  // contract); ExecuteTask reads it lock-free — the pool's task queue
  // gives worker threads the necessary happens-before edge.
  CancelToken cancel;
  const FaultPolicy* policy = nullptr;
  std::atomic<uint64_t> cancelled_ops{0};
};

StageScheduler::StageScheduler(ThreadPool* pool, TextSource& source,
                               const FaultPolicy& policy)
    : pool_(pool),
      source_(source),
      // Only a caching decorator at the FRONT of the chain is consulted
      // per-outcome; a deeper one still works (Search/Fetch route through
      // it) but its outcomes are not attributable to stages from here.
      caching_(dynamic_cast<CachingTextSource*>(&source)),
      policy_(policy),
      state_(std::make_shared<State>()) {
  state_->policy = &policy_;
}

StageScheduler::~StageScheduler() {
  // Leftover units (a caller that errored out before Wait) must still run:
  // their captures reference caller state that dies with the caller, and
  // pool drain jobs may already hold them.
  (void)Wait();
}

StageScheduler::StageId StageScheduler::AddStage(const StageDesc& desc) {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->stages.push_back(std::make_unique<StageCounters>());
  StageCounters* counters = state_->stages.back().get();
  counters->desc = desc;
  counters->rank = state_->stages.size() - 1;
  return counters;
}

void StageScheduler::SetDeadline(std::chrono::steady_clock::time_point deadline,
                                 SteadyClockFn clock) {
  has_deadline_ = true;
  deadline_ = deadline;
  deadline_clock_ = std::move(clock);
}

void StageScheduler::SetCancelToken(CancelToken token) {
  // No lock: must be called before any unit spawns (see State::cancel), so
  // the write is ordered before every lock-free read in ExecuteTask.
  state_->cancel = std::move(token);
}

uint64_t StageScheduler::cancelled_operations() const {
  return state_->cancelled_ops.load(std::memory_order_relaxed);
}

Status StageScheduler::CheckDeadline(StageId stage) {
  // Cooperative cancellation first. The ambient token is the armed one:
  // ExecuteTask installs it around every unit, and inline (driver-thread)
  // operations run under the caller's own scope. Check() also arms the
  // token when its deadline has passed.
  if (Status cancel = CurrentCancelToken().Check(); !cancel.ok()) {
    if (cancel.code() == StatusCode::kCancelled) {
      // Client abort / shutdown: the query is going to error out with
      // kCancelled (permanent — no best-effort absorption, no torn rows),
      // but the report stays honest about the operation dropped.
      state_->cancelled_ops.fetch_add(1, std::memory_order_relaxed);
      policy_.NoteCancelledOperation();
      return cancel;
    }
    // The token's own deadline fired: same semantics as the armed
    // scheduler deadline below — the operation is shed, not cancelled
    // (under best-effort the query still finishes with the rows it has).
    shed_operations_.fetch_add(1, std::memory_order_relaxed);
    policy_.NoteShedOperation();
    return cancel;
  }
  if (!has_deadline_) return Status::OK();
  const auto now = deadline_clock_ ? deadline_clock_()
                                   : std::chrono::steady_clock::now();
  if (now <= deadline_) return Status::OK();
  // Shed: the deadline has passed, so this operation's answer can no
  // longer be useful — don't spend source traffic on it. The shed marks
  // the result incomplete; the method's HandleSourceFailure then decides
  // (via the DeadlineExceeded status) whether the query aborts (fail-fast)
  // or finishes with the rows it has (best-effort, which also counts the
  // unit among skipped_operations — shed says WHY it was dropped).
  shed_operations_.fetch_add(1, std::memory_order_relaxed);
  policy_.NoteShedOperation();
  return Status::DeadlineExceeded(
      std::string("query deadline exceeded; ") +
      StageKindName(stage->desc.kind) + " operation shed");
}

void StageScheduler::Spawn(StageId stage, uint64_t ordinal,
                           std::function<Status()> fn) {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->queue.push_back(Task{stage, ordinal, std::move(fn)});
    ++state_->pending;
  }
  state_->cv.notify_one();
  if (pool_ != nullptr && pool_->num_threads() > 0) {
    // One drain job per unit keeps every worker busy whenever the queue is
    // non-empty; a job that finds the queue already drained is a no-op.
    std::shared_ptr<State> state = state_;
    pool_->Run([state] { DrainOne(*state); });
  }
}

bool StageScheduler::DrainOne(State& state) {
  Task task;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (state.queue.empty()) return false;
    task = std::move(state.queue.front());
    state.queue.pop_front();
  }
  ExecuteTask(state, std::move(task));
  return true;
}

void StageScheduler::ExecuteTask(State& state, Task task) {
  // Propagate the query token to whichever thread runs the unit, so every
  // source-side wait (retry backoff, limiter queue, chaos latency) under
  // this unit observes it. Pool workers carry no ambient token and need the
  // scope; the serial driver thread usually already has the identical token
  // ambient (Pipeline::Execute inherits it), and re-installing it there
  // would charge every in-memory unit a mutex + shared_ptr copy + TLS swap
  // for nothing — so skip the scope when the states already match. Reading
  // `state.cancel` without the lock is safe: it is written once before any
  // unit spawns (SetCancelToken contract) and the pool's task queue
  // establishes happens-before for worker threads.
  std::optional<CancelScope> scope;
  if (state.cancel.valid() &&
      !state.cancel.SharesStateWith(CurrentCancelToken())) {
    scope.emplace(state.cancel);
  }
  // Once the token fires (client abort / shutdown), pending units drain
  // WITHOUT running: captures are released, the unit is accounted as
  // cancelled, and the sticky failure keeps kCancelled so the query can
  // never publish a torn row set. Deadline-armed tokens do NOT drain units
  // — their operations shed individually and the driver still assembles.
  Status status;
  if (Status cancel = state.cancel.Check();
      !cancel.ok() && cancel.code() == StatusCode::kCancelled) {
    state.cancelled_ops.fetch_add(1, std::memory_order_relaxed);
    if (state.policy != nullptr) state.policy->NoteCancelledOperation();
    task.fn = nullptr;  // Release captures before waiters may proceed.
    task.stage->units.fetch_add(1, std::memory_order_relaxed);
    status = std::move(cancel);
  } else {
    const uint64_t saved_op_ns = tls_op_ns;
    tls_op_ns = 0;
    const auto start = std::chrono::steady_clock::now();
    status = task.fn();
    const uint64_t elapsed = NsSince(start);
    const uint64_t inner_ops = tls_op_ns;
    // An enclosing scope (a driver draining inside a ScopedStageTimer) must
    // not double-count this unit's time as its own.
    tls_op_ns = saved_op_ns + elapsed;
    task.fn = nullptr;  // Release captures before waiters may proceed.
    task.stage->units.fetch_add(1, std::memory_order_relaxed);
    task.stage->wall_ns.fetch_add(
        elapsed > inner_ops ? elapsed - inner_ops : 0,
        std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(state.mu);
    if (!status.ok()) {
      const bool wins =
          !state.failed || task.stage->rank < state.fail_rank ||
          (task.stage->rank == state.fail_rank &&
           task.ordinal < state.fail_ordinal);
      if (wins) {
        state.failed = true;
        state.fail_rank = task.stage->rank;
        state.fail_ordinal = task.ordinal;
        state.failure = std::move(status);
      }
    }
    --state.pending;
  }
  state.cv.notify_all();
}

Status StageScheduler::Wait() {
  std::shared_ptr<State> state = state_;
  std::unique_lock<std::mutex> lock(state->mu);
  for (;;) {
    state->cv.wait(lock, [&state] {
      return !state->queue.empty() || state->pending == 0;
    });
    if (state->queue.empty()) break;  // pending == 0: everything ran.
    Task task = std::move(state->queue.front());
    state->queue.pop_front();
    lock.unlock();
    ExecuteTask(*state, std::move(task));
    lock.lock();
  }
  return state->failed ? state->failure : Status::OK();
}

void StageScheduler::NoteCancelledResult(const Status& status) {
  if (status.code() != StatusCode::kCancelled) return;
  state_->cancelled_ops.fetch_add(1, std::memory_order_relaxed);
  policy_.NoteCancelledOperation();
}

Result<std::vector<std::string>> StageScheduler::Search(
    StageId stage, const TextQuery& query) {
  if (Status shed = CheckDeadline(stage); !shed.ok()) return shed;
  OpTimer timer(*this, stage);
  if (caching_ != nullptr) {
    CachingTextSource::Outcome outcome;
    Result<std::vector<std::string>> result =
        caching_->SearchWithOutcome(query, &outcome);
    constexpr auto kRelaxed = std::memory_order_relaxed;
    switch (outcome) {
      case CachingTextSource::Outcome::kMiss:
        // The upstream call happened: charge it as always.
        if (result.ok()) {
          stage->invocations.fetch_add(1, kRelaxed);
          stage->short_docs.fetch_add(result->size(), kRelaxed);
        }
        stage->cache_misses.fetch_add(1, kRelaxed);
        break;
      case CachingTextSource::Outcome::kHit:
        // No upstream call: the stage profile mirrors the meter (nothing
        // charged) and reports the hit separately.
        stage->cache_hits.fetch_add(1, kRelaxed);
        break;
      case CachingTextSource::Outcome::kCoalesced:
        // The ONE upstream call is charged by the leader's stage.
        stage->cache_coalesced.fetch_add(1, kRelaxed);
        break;
    }
    if (!result.ok()) NoteCancelledResult(result.status());
    return result;
  }
  Result<std::vector<std::string>> result = source_.Search(query);
  if (result.ok()) {
    stage->invocations.fetch_add(1, std::memory_order_relaxed);
    stage->short_docs.fetch_add(result->size(), std::memory_order_relaxed);
  } else {
    NoteCancelledResult(result.status());
  }
  return result;
}

Result<Document> StageScheduler::Fetch(StageId stage,
                                       const std::string& docid) {
  if (Status shed = CheckDeadline(stage); !shed.ok()) return shed;
  OpTimer timer(*this, stage);
  if (caching_ != nullptr) {
    CachingTextSource::Outcome outcome;
    Result<Document> result = caching_->FetchWithOutcome(docid, &outcome);
    constexpr auto kRelaxed = std::memory_order_relaxed;
    switch (outcome) {
      case CachingTextSource::Outcome::kMiss:
        if (result.ok()) stage->long_docs.fetch_add(1, kRelaxed);
        stage->cache_misses.fetch_add(1, kRelaxed);
        break;
      case CachingTextSource::Outcome::kHit:
        stage->cache_hits.fetch_add(1, kRelaxed);
        break;
      case CachingTextSource::Outcome::kCoalesced:
        stage->cache_coalesced.fetch_add(1, kRelaxed);
        break;
    }
    if (!result.ok()) NoteCancelledResult(result.status());
    return result;
  }
  Result<Document> result = source_.Fetch(docid);
  if (result.ok()) {
    stage->long_docs.fetch_add(1, std::memory_order_relaxed);
  } else {
    NoteCancelledResult(result.status());
  }
  return result;
}

void StageScheduler::ChargeRelationalMatches(StageId stage,
                                             uint64_t docs_scanned) {
  pipeline::ChargeRelationalMatches(source_, docs_scanned);
  stage->relational_matches.fetch_add(docs_scanned,
                                      std::memory_order_relaxed);
}

void StageScheduler::AddStageCounts(StageId stage, uint64_t invocations,
                                    uint64_t short_docs, uint64_t long_docs) {
  stage->invocations.fetch_add(invocations, std::memory_order_relaxed);
  stage->short_docs.fetch_add(short_docs, std::memory_order_relaxed);
  stage->long_docs.fetch_add(long_docs, std::memory_order_relaxed);
}

void StageScheduler::NoteCacheHit(StageId stage) {
  stage->cache_hits.fetch_add(1, std::memory_order_relaxed);
}

Status StageScheduler::HandleSourceFailure(Status status,
                                           bool affects_completeness) const {
  if (status.ok()) return status;
  const bool absorbable = policy_.best_effort() ||
                          (policy_.recovers() && !affects_completeness);
  if (absorbable && IsTransientError(status.code())) {
    policy_.NoteSkippedOperation(affects_completeness);
    return Status::OK();
  }
  return status;
}

PipelineProfile StageScheduler::Profile(
    const std::vector<StageId>& ids) const {
  PipelineProfile profile;
  profile.stages.reserve(ids.size());
  for (StageId id : ids) {
    StageStats stats;
    stats.desc = id->desc;
    stats.units = id->units.load(std::memory_order_relaxed);
    stats.wall_seconds =
        static_cast<double>(id->wall_ns.load(std::memory_order_relaxed)) /
        1e9;
    stats.invocations = id->invocations.load(std::memory_order_relaxed);
    stats.short_docs = id->short_docs.load(std::memory_order_relaxed);
    stats.long_docs = id->long_docs.load(std::memory_order_relaxed);
    stats.relational_matches =
        id->relational_matches.load(std::memory_order_relaxed);
    stats.cache_hits = id->cache_hits.load(std::memory_order_relaxed);
    stats.cache_misses = id->cache_misses.load(std::memory_order_relaxed);
    stats.cache_coalesced =
        id->cache_coalesced.load(std::memory_order_relaxed);
    profile.stages.push_back(std::move(stats));
  }
  return profile;
}

// ---------------------------------------------------------------------------
// Timers

OpTimer::OpTimer(StageScheduler& /*sched*/, StageScheduler::StageId stage)
    : stage_(stage), start_(std::chrono::steady_clock::now()) {}

OpTimer::~OpTimer() {
  const uint64_t elapsed = NsSince(start_);
  stage_->wall_ns.fetch_add(elapsed, std::memory_order_relaxed);
  tls_op_ns += elapsed;
}

ScopedStageTimer::ScopedStageTimer(StageScheduler& /*sched*/,
                                   StageScheduler::StageId stage,
                                   uint64_t units)
    : stage_(stage),
      units_(units),
      start_(std::chrono::steady_clock::now()),
      op_ns_at_start_(tls_op_ns) {}

ScopedStageTimer::~ScopedStageTimer() {
  const uint64_t elapsed = NsSince(start_);
  const uint64_t inner_ops = tls_op_ns - op_ns_at_start_;
  stage_->units.fetch_add(units_, std::memory_order_relaxed);
  stage_->wall_ns.fetch_add(elapsed > inner_ops ? elapsed - inner_ops : 0,
                            std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// DocFetcher

size_t DocFetcher::Fetch(const std::string& docid) {
  return Fetch(docid, nullptr, nullptr);
}

size_t DocFetcher::Fetch(const std::string& docid,
                         StageScheduler::StageId then_stage,
                         std::function<Status(const Document&)> then) {
  Document* slot_ptr = nullptr;
  size_t slot = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    slot = docs_.size();
    docs_.emplace_back();
    slot_ptr = &docs_.back();
  }
  StageScheduler* sched = &sched_;
  StageScheduler::StageId stage = stage_;
  sched_.Spawn(
      stage_, slot,
      [sched, stage, then_stage, then, slot_ptr, slot, docid]() -> Status {
        Result<Document> fetched = sched->Fetch(stage, docid);
        if (!fetched.ok()) {
          // Absorbed => the slot keeps its placeholder Document, and the
          // continuation never runs (there is nothing to match).
          return sched->HandleSourceFailure(fetched.status(),
                                            /*affects_completeness=*/true);
        }
        *slot_ptr = *std::move(fetched);
        if (then) {
          sched->Spawn(then_stage, slot, [then, slot_ptr]() -> Status {
            return then(*slot_ptr);
          });
        }
        return Status::OK();
      });
  return slot;
}

const Document& DocFetcher::doc(size_t slot) const {
  std::lock_guard<std::mutex> lock(mu_);
  return docs_.at(slot);
}

size_t DocFetcher::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return docs_.size();
}

// ---------------------------------------------------------------------------
// Pipeline: lowering + execution

StageScheduler::StageId MethodContext::Stage(StageKind kind) const {
  TEXTJOIN_CHECK(stage_descs != nullptr, "MethodContext has no stage list");
  for (size_t i = 0; i < stage_descs->size(); ++i) {
    if ((*stage_descs)[i].kind == kind) return stage_ids.at(i);
  }
  TEXTJOIN_UNREACHABLE("stage kind not in this lowering");
}

Result<Pipeline> Pipeline::Lower(JoinMethodKind method,
                                 const ForeignJoinSpec& spec,
                                 PredicateMask probe_mask) {
  using K = StageKind;
  const bool is_probe_method =
      method == JoinMethodKind::kPTS || method == JoinMethodKind::kPRTP;
  if (!is_probe_method && probe_mask != 0) {
    return Status::InvalidArgument(
        std::string("probe mask given to non-probing method ") +
        JoinMethodName(method));
  }
  if (is_probe_method) {
    TEXTJOIN_RETURN_IF_ERROR(ValidateProbeMask(spec, probe_mask));
  }
  const std::string fetch_form =
      spec.need_document_fields ? "long-form" : "docid-only";
  std::vector<StageDesc> stages;
  switch (method) {
    case JoinMethodKind::kTS:
      if (spec.selections.empty() && spec.joins.empty()) {
        return Status::InvalidArgument(
            "TS needs at least one text predicate to instantiate");
      }
      stages = {{K::kDistinctKeys, "all-preds"},
                {K::kQueryBuild, "per-combination"},
                {K::kSearchDispatch, "per-combination"},
                {K::kFetch, fetch_form},
                {K::kAssemble, "group-order"}};
      break;
    case JoinMethodKind::kRTP:
      if (spec.selections.empty()) {
        // Without selections, the single text search would be
        // unconstrained. The paper (Section 3.2): "This method further
        // requires that there are selection conditions on the text data."
        return Status::InvalidArgument(
            "RTP requires text selection conditions");
      }
      stages = {{K::kQueryBuild, "selections-only"},
                {K::kSearchDispatch, "single"},
                {K::kFetch, "long-form"},
                {K::kMatch, "string-match"},
                {K::kAssemble, "doc-order"}};
      break;
    case JoinMethodKind::kSJ:
      if (spec.joins.empty()) {
        return Status::InvalidArgument("SJ requires text join predicates");
      }
      if (spec.left_columns_needed) {
        // Pure SJ cannot recover which tuple matched which document; the
        // paper applies it when "the query itself is a semi-join" (only
        // docids are projected). Use SJ+RTP otherwise.
        return Status::InvalidArgument(
            "SJ yields a doc-side semi-join; the query needs outer columns");
      }
      stages = {{K::kDistinctKeys, "all-preds"},
                {K::kQueryBuild, "or-batch+resplit"},
                {K::kSearchDispatch, "per-batch"},
                {K::kFetch, fetch_form + ",dedup"},
                {K::kAssemble, "null-left,first-seen"}};
      break;
    case JoinMethodKind::kSJRTP:
      if (spec.joins.empty()) {
        return Status::InvalidArgument(
            "SJ+RTP requires text join predicates");
      }
      stages = {{K::kDistinctKeys, "all-preds"},
                {K::kQueryBuild, "or-batch+resplit"},
                {K::kSearchDispatch, "per-batch"},
                {K::kFetch, "long-form,dedup"},
                {K::kMatch, "string-match"},
                {K::kAssemble, "first-seen"}};
      break;
    case JoinMethodKind::kPTS:
      stages = {{K::kDistinctKeys, "all-preds"},
                {K::kProbeFilter, "cache," + MaskToString(probe_mask)},
                {K::kQueryBuild, "per-combination"},
                {K::kSearchDispatch, "serial-chain"},
                {K::kFetch, fetch_form},
                {K::kAssemble, "group-order"}};
      break;
    case JoinMethodKind::kPRTP:
      stages = {{K::kDistinctKeys, "probe-cols," + MaskToString(probe_mask)},
                {K::kQueryBuild, "per-probe"},
                {K::kSearchDispatch, "per-probe"},
                {K::kFetch, "long-form,dedup"},
                {K::kMatch, "residual-preds"},
                {K::kAssemble, "group-order"}};
      break;
  }
  TEXTJOIN_CHECK(!stages.empty(), "method lowered to no stages");
  return Pipeline(method, probe_mask, std::move(stages));
}

std::string Pipeline::ToString() const {
  std::string out = JoinMethodName(method_);
  out += ": ";
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (i != 0) out += " -> ";
    out += stages_[i].ToString();
  }
  return out;
}

Result<ForeignJoinResult> Pipeline::Execute(
    const ForeignJoinSpec& spec, const std::vector<Row>& left_rows,
    TextSource& source, ThreadPool* pool, const FaultPolicy& policy,
    PipelineProfile* profile, StageScheduler* scheduler) const {
  TEXTJOIN_ASSIGN_OR_RETURN(ResolvedSpec rspec, ResolveSpec(spec));
  std::optional<StageScheduler> owned;
  if (scheduler == nullptr) {
    owned.emplace(pool, source, policy);
    // A private scheduler inherits the caller's ambient token, so units
    // running on pool threads observe cancellation too. (The executor arms
    // its shared scheduler explicitly via SetCancelToken.)
    if (const CancelToken& token = CurrentCancelToken(); token.valid()) {
      owned->SetCancelToken(token);
    }
    scheduler = &*owned;
  }
  MethodContext ctx{rspec, left_rows, probe_mask_, *scheduler, &stages_, {}};
  ctx.stage_ids.reserve(stages_.size());
  for (const StageDesc& desc : stages_) {
    ctx.stage_ids.push_back(scheduler->AddStage(desc));
  }
  Result<ForeignJoinResult> result = [&]() -> Result<ForeignJoinResult> {
    switch (method_) {
      case JoinMethodKind::kTS:
        return RunTS(ctx);
      case JoinMethodKind::kRTP:
        return RunRTP(ctx);
      case JoinMethodKind::kSJ:
        return RunSJ(ctx);
      case JoinMethodKind::kSJRTP:
        return RunSJRTP(ctx);
      case JoinMethodKind::kPTS:
        return RunPTS(ctx);
      case JoinMethodKind::kPRTP:
        return RunPRTP(ctx);
    }
    TEXTJOIN_UNREACHABLE("bad JoinMethodKind");
  }();
  if (profile != nullptr) *profile = scheduler->Profile(ctx.stage_ids);
  return result;
}

}  // namespace textjoin::pipeline
