#include "core/batched_ts.h"

#include <cmath>

#include "core/join_methods_internal.h"

namespace textjoin {

Result<ForeignJoinResult> ExecuteTupleSubstitutionBatched(
    const ForeignJoinSpec& spec, const std::vector<Row>& left_rows,
    CooperativeTextSource& source) {
  if (spec.selections.empty() && spec.joins.empty()) {
    return Status::InvalidArgument(
        "batched TS needs at least one text predicate to instantiate");
  }
  TEXTJOIN_ASSIGN_OR_RETURN(internal::ResolvedSpec rspec,
                            internal::ResolveSpec(spec));
  const PredicateMask all = FullMask(spec.joins.size());
  ForeignJoinResult result;
  result.schema = rspec.output_schema;

  const auto groups = internal::GroupByTerms(rspec, left_rows, all);
  // Materialize the per-combination searches in deterministic order.
  std::vector<TextQueryPtr> searches;
  std::vector<const std::vector<size_t>*> group_rows;
  for (const auto& [terms, row_indices] : groups) {
    searches.push_back(internal::BuildSearch(rspec, terms, all));
    group_rows.push_back(&row_indices);
  }

  for (size_t start = 0; start < searches.size();
       start += source.max_batch_size()) {
    const size_t count =
        std::min(source.max_batch_size(), searches.size() - start);
    std::vector<const TextQuery*> batch;
    batch.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      batch.push_back(searches[start + i].get());
    }
    TEXTJOIN_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> answers,
                              source.SearchBatch(batch));
    TEXTJOIN_CHECK(answers.size() == count,
                   "batch answer correspondence violated");
    for (size_t i = 0; i < count; ++i) {
      const std::vector<std::string>& docids = answers[i];
      if (docids.empty()) continue;
      std::vector<Row> doc_rows;
      doc_rows.reserve(docids.size());
      for (const std::string& docid : docids) {
        if (spec.need_document_fields) {
          TEXTJOIN_ASSIGN_OR_RETURN(Document doc, source.Fetch(docid));
          doc_rows.push_back(internal::DocumentToRow(spec.text, doc));
        } else {
          doc_rows.push_back(internal::DocidOnlyRow(spec.text, docid));
        }
      }
      for (size_t r : *group_rows[start + i]) {
        for (const Row& doc_row : doc_rows) {
          result.rows.push_back(ConcatRows(left_rows[r], doc_row));
        }
      }
    }
  }
  return result;
}

double CostTSBatched(const CostModel& model, size_t batch_size) {
  TEXTJOIN_CHECK(batch_size > 0, "batch size must be positive");
  const PredicateMask all = FullMask(model.num_predicates());
  const double n = model.DistinctCombinations(all);
  const double batches =
      std::ceil(n / static_cast<double>(batch_size));
  const double transmit = model.stats().need_document_fields
                              ? model.params().long_form
                              : model.params().short_form;
  return model.params().invocation * batches +
         model.params().per_posting * model.PostingsScanned(n, all) +
         transmit * model.TotalMatchedDocs(n, all);
}

}  // namespace textjoin
