#include "core/batched_ts.h"

#include <cmath>

#include "core/pipeline.h"

namespace textjoin {

Result<ForeignJoinResult> ExecuteTupleSubstitutionBatched(
    const ForeignJoinSpec& spec, const std::vector<Row>& left_rows,
    CooperativeTextSource& source, pipeline::PipelineProfile* stage_profile) {
  using pipeline::DocFetcher;
  using pipeline::OpTimer;
  using pipeline::ScopedStageTimer;
  using pipeline::StageKind;
  using pipeline::StageScheduler;
  if (spec.selections.empty() && spec.joins.empty()) {
    return Status::InvalidArgument(
        "batched TS needs at least one text predicate to instantiate");
  }
  TEXTJOIN_ASSIGN_OR_RETURN(pipeline::ResolvedSpec rspec,
                            pipeline::ResolveSpec(spec));
  const PredicateMask all = FullMask(spec.joins.size());
  ForeignJoinResult result;
  result.schema = rspec.output_schema;

  // The batched protocol is a serial conversation with the cooperative
  // source, so the scheduler runs without a pool; it still provides the
  // per-stage account and the shared fetch/assembly machinery.
  StageScheduler sched(nullptr, source, FaultPolicy{});
  const StageScheduler::StageId sd_keys =
      sched.AddStage({StageKind::kDistinctKeys, "all-preds"});
  const StageScheduler::StageId sd_build =
      sched.AddStage({StageKind::kQueryBuild, "per-combination"});
  const StageScheduler::StageId sd_search =
      sched.AddStage({StageKind::kSearchDispatch, "batch-invoke"});
  const StageScheduler::StageId sd_fetch = sched.AddStage(
      {StageKind::kFetch,
       spec.need_document_fields ? "long-form" : "docid-only"});
  const StageScheduler::StageId sd_assemble =
      sched.AddStage({StageKind::kAssemble, "group-order"});
  const std::vector<StageScheduler::StageId> stage_ids = {
      sd_keys, sd_build, sd_search, sd_fetch, sd_assemble};

  pipeline::KeyGroups groups;
  {
    ScopedStageTimer timer(sched, sd_keys, 1);
    groups = pipeline::GroupRowsByTerms(rspec, left_rows, all);
  }
  std::vector<TextQueryPtr> searches;
  {
    ScopedStageTimer timer(sched, sd_build, groups.size());
    searches.reserve(groups.size());
    for (const std::vector<std::string>& terms : groups.terms) {
      searches.push_back(pipeline::BuildSearch(rspec, terms, all));
    }
  }

  // One answer vector per combination; fetches queue behind the batch
  // conversation (exactly one Fetch per (combination, docid) occurrence —
  // no cross-combination cache, the paper's c_l * V accounting).
  DocFetcher fetcher(sched, sd_fetch);
  std::vector<std::vector<std::string>> docids_per_group(groups.size());
  std::vector<std::vector<size_t>> slots_per_group(groups.size());
  for (size_t start = 0; start < searches.size();
       start += source.max_batch_size()) {
    const size_t count =
        std::min(source.max_batch_size(), searches.size() - start);
    ScopedStageTimer timer(sched, sd_search, 1);
    std::vector<const TextQuery*> batch;
    batch.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      batch.push_back(searches[start + i].get());
    }
    std::vector<std::vector<std::string>> answers;
    {
      OpTimer op(sched, sd_search);
      TEXTJOIN_ASSIGN_OR_RETURN(answers, source.SearchBatch(batch));
    }
    TEXTJOIN_CHECK(answers.size() == count,
                   "batch answer correspondence violated");
    uint64_t short_docs = 0;
    for (size_t i = 0; i < count; ++i) {
      short_docs += answers[i].size();
      docids_per_group[start + i] = std::move(answers[i]);
      if (spec.need_document_fields) {
        for (const std::string& docid : docids_per_group[start + i]) {
          slots_per_group[start + i].push_back(fetcher.Fetch(docid));
        }
      }
    }
    sched.AddStageCounts(sd_search, /*invocations=*/1, short_docs,
                         /*long_docs=*/0);
  }
  TEXTJOIN_RETURN_IF_ERROR(sched.Wait());

  {
    ScopedStageTimer timer(sched, sd_assemble, 1);
    for (size_t g = 0; g < groups.size(); ++g) {
      if (docids_per_group[g].empty()) continue;
      std::vector<Row> doc_rows;
      if (spec.need_document_fields) {
        doc_rows.reserve(slots_per_group[g].size());
        for (size_t slot : slots_per_group[g]) {
          doc_rows.push_back(
              pipeline::DocumentToRow(spec.text, fetcher.doc(slot)));
        }
      } else {
        doc_rows.reserve(docids_per_group[g].size());
        for (const std::string& docid : docids_per_group[g]) {
          doc_rows.push_back(pipeline::DocidOnlyRow(spec.text, docid));
        }
      }
      for (size_t r : groups.rows[g]) {
        for (const Row& doc_row : doc_rows) {
          result.rows.push_back(ConcatRows(left_rows[r], doc_row));
        }
      }
    }
  }
  if (stage_profile != nullptr) *stage_profile = sched.Profile(stage_ids);
  return result;
}

double CostTSBatched(const CostModel& model, size_t batch_size) {
  TEXTJOIN_CHECK(batch_size > 0, "batch size must be positive");
  const PredicateMask all = FullMask(model.num_predicates());
  const double n = model.DistinctCombinations(all);
  const double batches =
      std::ceil(n / static_cast<double>(batch_size));
  const double transmit = model.stats().need_document_fields
                              ? model.params().long_form
                              : model.params().short_form;
  return model.params().invocation * batches +
         model.params().per_posting * model.PostingsScanned(n, all) +
         transmit * model.TotalMatchedDocs(n, all);
}

}  // namespace textjoin
