#include "core/statistics.h"

#include <set>

#include "text/query.h"

namespace textjoin {

void StatsRegistry::SetTextJoinStats(const std::string& column_ref,
                                     const std::string& field,
                                     double selectivity, double fanout) {
  join_stats_[{column_ref, field}] = JoinStatsEntry{selectivity, fanout};
}

Result<TextPredicateStats> StatsRegistry::GetTextJoinStats(
    const std::string& column_ref, const std::string& field) const {
  auto it = join_stats_.find({column_ref, field});
  if (it == join_stats_.end()) {
    return Status::NotFound("no statistics for '" + column_ref + " in " +
                            field + "'");
  }
  TextPredicateStats stats;
  stats.selectivity = it->second.selectivity;
  stats.fanout = it->second.fanout;
  stats.num_distinct = 0.0;  // filled by the caller from table stats
  return stats;
}

bool StatsRegistry::HasTextJoinStats(const std::string& column_ref,
                                     const std::string& field) const {
  return join_stats_.count({column_ref, field}) != 0;
}

void StatsRegistry::SetTextSelectionStats(const std::string& term,
                                          const std::string& field,
                                          double match_docs,
                                          double postings) {
  selection_stats_[{term, field}] = TextSelectionStats{match_docs, postings};
}

Result<TextSelectionStats> StatsRegistry::GetTextSelectionStats(
    const std::string& term, const std::string& field) const {
  auto it = selection_stats_.find({term, field});
  if (it == selection_stats_.end()) {
    return Status::NotFound("no statistics for selection '" + term + "' in " +
                            field);
  }
  return it->second;
}

void StatsRegistry::SetTableStats(const std::string& table_name,
                                  TableStats stats) {
  table_stats_[table_name] = std::move(stats);
}

Result<const TableStats*> StatsRegistry::GetTableStats(
    const std::string& table_name) const {
  auto it = table_stats_.find(table_name);
  if (it == table_stats_.end()) {
    return Status::NotFound("no table statistics for '" + table_name + "'");
  }
  return &it->second;
}

namespace {

// Exact (selectivity, fanout, postings) of `term in field` via unmetered
// engine searches, summed across shards (one shard = one corpus).
Result<EngineSearchResult> OracleSearch(
    const std::vector<const SearchableCorpus*>& shards,
    const std::string& field, const std::string& term) {
  TextQueryPtr q = TextQuery::Term(field, term);
  EngineSearchResult total;
  for (const SearchableCorpus* shard : shards) {
    TEXTJOIN_ASSIGN_OR_RETURN(EngineSearchResult result, shard->Search(*q));
    total.docs.insert(total.docs.end(), result.docs.begin(),
                      result.docs.end());
    total.postings_processed += result.postings_processed;
  }
  return total;
}

}  // namespace

Status ComputeExactStats(const FederatedQuery& query, const Catalog& catalog,
                         const SearchableCorpus& corpus,
                         StatsRegistry& registry) {
  return ComputeExactStats(query, catalog,
                           std::vector<const SearchableCorpus*>{&corpus},
                           registry);
}

Status ComputeExactStats(const FederatedQuery& query, const Catalog& catalog,
                         const std::vector<const SearchableCorpus*>& shards,
                         StatsRegistry& registry) {
  // Relational table statistics.
  for (const RelationRef& rel : query.relations) {
    TEXTJOIN_ASSIGN_OR_RETURN(Table * table,
                              catalog.GetTable(rel.table_name));
    registry.SetTableStats(rel.table_name, TableStats::Analyze(*table));
  }
  // Text selection statistics.
  for (const TextSelection& sel : query.text_selections) {
    TEXTJOIN_ASSIGN_OR_RETURN(EngineSearchResult result,
                              OracleSearch(shards, sel.field, sel.term));
    registry.SetTextSelectionStats(
        sel.term, sel.field, static_cast<double>(result.docs.size()),
        static_cast<double>(result.postings_processed));
  }
  // Text join predicate statistics: enumerate the column's distinct values.
  for (const TextJoinPredicate& pred : query.text_joins) {
    const size_t dot = pred.column_ref.find('.');
    if (dot == std::string::npos) {
      return Status::InvalidArgument("text join column '" + pred.column_ref +
                                     "' must be qualified");
    }
    const std::string rel_name = pred.column_ref.substr(0, dot);
    TEXTJOIN_ASSIGN_OR_RETURN(const RelationRef* rel,
                              query.FindRelation(rel_name));
    TEXTJOIN_ASSIGN_OR_RETURN(Table * table,
                              catalog.GetTable(rel->table_name));
    TEXTJOIN_ASSIGN_OR_RETURN(size_t col,
                              table->schema().Resolve(pred.column_ref));
    std::set<std::string> distinct;
    for (const Row& row : table->rows()) {
      const Value& v = row.at(col);
      if (v.type() == ValueType::kString) distinct.insert(v.AsString());
    }
    if (distinct.empty()) {
      registry.SetTextJoinStats(pred.column_ref, pred.field, 0.0, 0.0);
      continue;
    }
    size_t matched = 0;
    uint64_t total_docs = 0;
    for (const std::string& term : distinct) {
      TEXTJOIN_ASSIGN_OR_RETURN(EngineSearchResult result,
                                OracleSearch(shards, pred.field, term));
      if (!result.docs.empty()) ++matched;
      total_docs += result.docs.size();
    }
    registry.SetTextJoinStats(
        pred.column_ref, pred.field,
        static_cast<double>(matched) / static_cast<double>(distinct.size()),
        static_cast<double>(total_docs) /
            static_cast<double>(distinct.size()));
  }
  return Status::OK();
}

}  // namespace textjoin
