#ifndef TEXTJOIN_CORE_JOIN_METHODS_INTERNAL_H_
#define TEXTJOIN_CORE_JOIN_METHODS_INTERNAL_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "connector/text_source.h"
#include "core/cost_model.h"
#include "core/join_methods.h"
#include "text/query.h"

/// \file
/// Helpers shared by the join-method implementations. Internal — not part
/// of the public API.

namespace textjoin::internal {

/// The join spec with column references resolved to indices.
struct ResolvedSpec {
  const ForeignJoinSpec* spec = nullptr;
  std::vector<size_t> join_columns;  ///< Index into left rows, per predicate.
  Schema output_schema;              ///< left ⨯ text.
};

/// Resolves every join predicate's column against the left schema and
/// validates the referenced fields against the text declaration.
Result<ResolvedSpec> ResolveSpec(const ForeignJoinSpec& spec);

/// The join-column values of `row` for the predicates in `mask`, as
/// strings. Returns nullopt if any value is NULL or non-string — such a
/// tuple can never match (text terms are strings), so no search is sent.
std::optional<std::vector<std::string>> JoinTerms(const ResolvedSpec& rspec,
                                                  const Row& row,
                                                  PredicateMask mask);

/// Builds the instantiated Boolean search: the conjunction of all text
/// selections plus, for each predicate in `mask`, its field-restricted term
/// taken from `terms` (parallel to the set bits of `mask`, ascending).
TextQueryPtr BuildSearch(const ResolvedSpec& rspec,
                         const std::vector<std::string>& terms,
                         PredicateMask mask);

/// Builds the selections-only search (used by RTP). Requires at least one
/// selection.
TextQueryPtr BuildSelectionSearch(const ForeignJoinSpec& spec);

/// One OR disjunct for the semi-join method: AND of the join terms of one
/// distinct combination (field-restricted).
TextQueryPtr BuildDisjunct(const ResolvedSpec& rspec,
                           const std::vector<std::string>& terms,
                           PredicateMask mask);

/// Converts a fetched document into the text-side row
/// [docid, field1, field2, ...] with multi-valued fields flattened.
Row DocumentToRow(const TextRelationDecl& text, const Document& doc);

/// The text-side row carrying only the docid (fields NULL).
Row DocidOnlyRow(const TextRelationDecl& text, const std::string& docid);

/// The all-NULL left row (for doc-side semi-join output).
Row NullLeftRow(const Schema& left_schema);

/// True if `doc` satisfies the join predicates in `mask` for `row`
/// (relational-side string matching; used by the RTP family).
bool DocMatchesRow(const ResolvedSpec& rspec, const Row& row,
                   const Document& doc, PredicateMask mask);

/// Groups row indices by their join-term combination over `mask`.
/// Rows with NULL/non-string join values are dropped (they cannot match).
/// Iteration order is deterministic (lexicographic by terms).
std::map<std::vector<std::string>, std::vector<size_t>> GroupByTerms(
    const ResolvedSpec& rspec, const std::vector<Row>& rows,
    PredicateMask mask);

/// Validates a probe mask: non-zero and within the predicate count.
Status ValidateProbeMask(const ForeignJoinSpec& spec, PredicateMask mask);

/// Charges `docs_scanned` relational string-matching operations (the c_a
/// component) to the source's meter when the source is metered (decorator
/// chains are unwrapped to find the metered source). The matching itself
/// happens on the database side, but the experiment harness reads one
/// combined meter, as the paper reports one combined time.
void ChargeRelationalMatches(TextSource& source, uint64_t docs_scanned);

/// Decides the fate of a failed source operation under `policy`:
/// returns OK (failure absorbed, recorded in the degradation sink) when the
/// policy may continue without this operation, the failure status
/// otherwise. A transient failure is absorbed under best-effort always,
/// and under retry-then-fail only when `affects_completeness` is false
/// (advisory operations — reducer probes, cache probes — can be dropped
/// without changing the answer). Permanent errors always propagate: they
/// are query bugs, not faults.
Status HandleSourceFailure(const FaultPolicy& policy, Status status,
                           bool affects_completeness);

/// True for the placeholder a best-effort fetch skip leaves behind (slot
/// alignment is preserved for callers that index fetched documents by
/// position; real documents always carry a docid).
inline bool IsPlaceholderDoc(const Document& doc) { return doc.docid.empty(); }

/// Runs `fn(0) .. fn(n-1)` — concurrently via `pool` when non-null — and
/// returns the first non-OK status in *index* order (deterministic no
/// matter which call failed first in wall-clock time). All n calls run
/// even when one fails, so the meter reflects every issued operation.
Status ParallelStatusFor(ThreadPool* pool, size_t n,
                         const std::function<Status(size_t)>& fn);

/// Fetches the long form of `docids` in order, overlapping the fetch
/// round-trips via `pool`. Exactly one Fetch per docid (the caller is
/// responsible for deduplication), so the meter matches serial execution.
/// Under a best-effort policy, a fetch that fails transiently leaves an
/// empty placeholder Document in its slot (see IsPlaceholderDoc) so the
/// returned vector stays aligned with `docids`.
Result<std::vector<Document>> FetchDocs(const std::vector<std::string>& docids,
                                        TextSource& source, ThreadPool* pool,
                                        const FaultPolicy& policy = {});

/// Builds the text-side rows for `docids`, in order: long-form fetches
/// (overlapped via `pool`) when the spec needs document fields, docid-only
/// rows otherwise. Under a best-effort policy, rows whose fetch failed
/// transiently are dropped from the output (callers only iterate, never
/// index by docid position).
Result<std::vector<Row>> FetchDocRows(const ResolvedSpec& rspec,
                                      const std::vector<std::string>& docids,
                                      TextSource& source, ThreadPool* pool,
                                      const FaultPolicy& policy = {});

}  // namespace textjoin::internal

#endif  // TEXTJOIN_CORE_JOIN_METHODS_INTERNAL_H_
