#include "core/single_join_optimizer.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace textjoin {

std::string MethodChoice::ToString() const {
  std::string out = JoinMethodName(method);
  if (method == JoinMethodKind::kPTS || method == JoinMethodKind::kPRTP) {
    out += " probe=" + MaskToString(probe_mask);
  }
  out += " cost=" + std::to_string(predicted_cost);
  return out;
}

size_t SingleJoinOptimizer::MaxProbeColumns() const {
  const size_t k = model_->num_predicates();
  const size_t bound =
      2 * static_cast<size_t>(model_->stats().correlation_g);
  return std::min(k, bound);
}

double SingleJoinOptimizer::CostOf(JoinMethodKind method,
                                   PredicateMask mask) const {
  switch (method) {
    case JoinMethodKind::kTS:
      return model_->CostTS();
    case JoinMethodKind::kRTP:
      return model_->CostRTP();
    case JoinMethodKind::kSJ:
      return model_->CostSJ();
    case JoinMethodKind::kSJRTP:
      return model_->CostSJRTP();
    case JoinMethodKind::kPTS:
      return model_->CostProbeTS(mask);
    case JoinMethodKind::kPRTP:
      return model_->CostProbeRTP(mask);
  }
  TEXTJOIN_UNREACHABLE("bad JoinMethodKind");
}

Result<MethodChoice> SingleJoinOptimizer::BestProbe(JoinMethodKind method,
                                                    bool exhaustive) const {
  if (method != JoinMethodKind::kPTS && method != JoinMethodKind::kPRTP) {
    return Status::InvalidArgument("BestProbe applies to probing methods");
  }
  const size_t k = model_->num_predicates();
  if (k == 0) {
    return Status::InvalidArgument("no text join predicates to probe on");
  }
  const size_t max_cols = exhaustive ? k : MaxProbeColumns();
  const PredicateMask all = FullMask(k);
  MethodChoice best;
  best.method = method;
  best.probe_mask = 0;
  best.predicted_cost = std::numeric_limits<double>::infinity();
  for (PredicateMask mask = 1; mask <= all; ++mask) {
    const size_t bits = static_cast<size_t>(__builtin_popcount(mask));
    if (bits == 0 || bits > max_cols) continue;
    const double cost = CostOf(method, mask);
    if (cost < best.predicted_cost) {
      best.predicted_cost = cost;
      best.probe_mask = mask;
    }
  }
  TEXTJOIN_CHECK(best.probe_mask != 0, "probe search found no candidate");
  return best;
}

std::vector<MethodChoice> SingleJoinOptimizer::RankMethods(
    const MethodApplicability& app, bool exhaustive) const {
  std::vector<MethodChoice> choices;
  const size_t k = model_->num_predicates();

  // TS is universally applicable (needs at least one text predicate, which
  // a foreign join by definition has).
  choices.push_back(
      {JoinMethodKind::kTS, 0, CostOf(JoinMethodKind::kTS, 0)});

  if (app.has_selections) {
    choices.push_back(
        {JoinMethodKind::kRTP, 0, CostOf(JoinMethodKind::kRTP, 0)});
  }
  if (k >= 1) {
    if (!app.left_columns_needed) {
      choices.push_back(
          {JoinMethodKind::kSJ, 0, CostOf(JoinMethodKind::kSJ, 0)});
    }
    choices.push_back(
        {JoinMethodKind::kSJRTP, 0, CostOf(JoinMethodKind::kSJRTP, 0)});
    Result<MethodChoice> pts = BestProbe(JoinMethodKind::kPTS, exhaustive);
    if (pts.ok()) choices.push_back(*pts);
    Result<MethodChoice> prtp = BestProbe(JoinMethodKind::kPRTP, exhaustive);
    if (prtp.ok()) choices.push_back(*prtp);
  }
  std::stable_sort(choices.begin(), choices.end(),
                   [](const MethodChoice& a, const MethodChoice& b) {
                     return a.predicted_cost < b.predicted_cost;
                   });
  return choices;
}

Result<MethodChoice> SingleJoinOptimizer::Choose(
    const MethodApplicability& app) const {
  const std::vector<MethodChoice> ranked = RankMethods(app);
  if (ranked.empty()) {
    return Status::Internal("no applicable join method");
  }
  return ranked.front();
}

}  // namespace textjoin
