#ifndef TEXTJOIN_CORE_PIPELINE_H_
#define TEXTJOIN_CORE_PIPELINE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "connector/overload.h"
#include "connector/resilience.h"
#include "connector/text_cache.h"
#include "connector/text_source.h"
#include "core/join_methods.h"
#include "text/query.h"

/// \file
/// The staged execution pipeline (DESIGN.md, "Staged execution pipeline").
/// Every foreign-join method of the paper decomposes into the same small
/// set of stages — distinct-key grouping, probe filtering, query building,
/// search dispatch, document fetch, relational matching, ordered assembly —
/// and the six methods differ only in which stages they compose and how.
/// This file provides:
///
///  - the stage taxonomy (StageKind / StageDesc) and per-stage runtime
///    accounting (StageStats / PipelineProfile);
///  - StageScheduler: ONE scheduler owning parallelism, FaultPolicy
///    handling, metering, and deterministic failure selection for all
///    methods. Unlike the per-phase parallel loops it replaces, the
///    scheduler pipelines ACROSS stages: a unit may spawn downstream units
///    (search answers spawn fetches) that execute while sibling upstream
///    units are still in flight, so there is no barrier between stages;
///  - DocFetcher: slot-addressed asynchronous document retrieval with
///    optional per-document continuation units (the RTP-family match
///    stage), replacing the FetchDocs / FetchDocRows loop copies;
///  - the shared spec-resolution and query-building helpers;
///  - Pipeline: the lowering of a JoinMethodKind into its stage
///    composition, and its execution.
///
/// Determinism contract (unchanged from the per-method loops): result rows
/// AND meter totals are byte-identical to serial execution at any
/// parallelism. The argument: (1) the set of issued source operations is a
/// pure function of per-operation outcomes, never of scheduling order;
/// (2) meter charges are commutative sums over that set; (3) every unit
/// writes into a pre-assigned slot and assembly replays a deterministic
/// order computed from the answers, not from completion order. Failure
/// reporting is deterministic too: when several units fail, Wait() returns
/// the failure of the minimum (stage, ordinal) pair, independent of which
/// failed first in wall-clock time.

namespace textjoin::pipeline {

// ---------------------------------------------------------------------------
// Stage taxonomy

/// The reusable stages every join method composes from.
enum class StageKind {
  kDistinctKeys,    ///< Group outer rows by join-key combination.
  kProbeFilter,     ///< Probe-cache lookups / advisory probes (P+TS, reducer).
  kQueryBuild,      ///< Instantiate Boolean searches (per-tuple or OR-batch).
  kSearchDispatch,  ///< Issue the searches to the text source.
  kFetch,           ///< Retrieve document long forms.
  kMatch,           ///< Relational-side matching (RTP string match / residual).
  kAssemble,        ///< Deterministic ordered result assembly.
};

/// "DistinctKeys", "ProbeFilter", ...
const char* StageKindName(StageKind kind);

/// One stage of a lowered pipeline: the kind plus a short detail string
/// describing the method-specific variant ("or-batch+resplit", ...).
struct StageDesc {
  StageKind kind;
  std::string detail;

  /// "QueryBuild(or-batch+resplit)".
  std::string ToString() const;
};

/// Runtime account of one stage: units executed, wall-clock attributed to
/// the stage, and the stage's share of the source meter. Wall-clock is
/// exact and non-overlapping: a unit's time excludes the source operations
/// it issued (those are charged to the operation's own stage), so stage
/// times sum to total busy time. Meter attribution covers invocations,
/// short/long transmissions and relational matches; postings_processed
/// cannot be split per stage (only the remote knows it) and stays a
/// node-level number.
struct StageStats {
  StageDesc desc;
  uint64_t units = 0;            ///< Work units the stage executed.
  double wall_seconds = 0.0;     ///< Busy time attributed to the stage.
  uint64_t invocations = 0;      ///< Successful source calls it issued.
  uint64_t short_docs = 0;       ///< Short-form results it received.
  uint64_t long_docs = 0;        ///< Long-form documents it fetched.
  uint64_t relational_matches = 0;  ///< Documents it string-matched.
  // Cross-query cache traffic of the stage's operations (text_cache.h).
  // Hits/coalesced operations charge no invocations/docs above — the stage
  // profile mirrors exactly what the source meter saw.
  uint64_t cache_hits = 0;       ///< Served from the cross-query cache.
  uint64_t cache_misses = 0;     ///< Went upstream (and seeded the cache).
  uint64_t cache_coalesced = 0;  ///< Served by another op's in-flight call.

  /// "SearchDispatch(per-batch): units=4 wall=20.1ms inv=4 short=37".
  /// Cache counters render only when nonzero (cache-off output unchanged).
  std::string ToString() const;
};

/// Per-stage profile of one pipeline execution, in lowering order.
struct PipelineProfile {
  std::vector<StageStats> stages;

  bool empty() const { return stages.empty(); }
  /// One StageStats::ToString() line per stage.
  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Resolved specs & query building (shared by every composition)

/// The join spec with column references resolved to indices.
struct ResolvedSpec {
  const ForeignJoinSpec* spec = nullptr;
  std::vector<size_t> join_columns;  ///< Index into left rows, per predicate.
  Schema output_schema;              ///< left ⨯ text.
};

/// Resolves every join predicate's column against the left schema and
/// validates the referenced fields against the text declaration.
Result<ResolvedSpec> ResolveSpec(const ForeignJoinSpec& spec);

/// The join-column values of `row` for the predicates in `mask`, as
/// strings. Returns nullopt if any value is NULL or non-string — such a
/// tuple can never match (text terms are strings), so no search is sent.
std::optional<std::vector<std::string>> JoinTerms(const ResolvedSpec& rspec,
                                                  const Row& row,
                                                  PredicateMask mask);

/// Builds the instantiated Boolean search: the conjunction of all text
/// selections plus, for each predicate in `mask`, its field-restricted term
/// taken from `terms` (parallel to the set bits of `mask`, ascending).
TextQueryPtr BuildSearch(const ResolvedSpec& rspec,
                         const std::vector<std::string>& terms,
                         PredicateMask mask);

/// Builds the selections-only search (used by RTP). Requires at least one
/// selection.
TextQueryPtr BuildSelectionSearch(const ForeignJoinSpec& spec);

/// One OR disjunct for the semi-join method: AND of the join terms of one
/// distinct combination (field-restricted).
TextQueryPtr BuildDisjunct(const ResolvedSpec& rspec,
                           const std::vector<std::string>& terms,
                           PredicateMask mask);

/// Converts a fetched document into the text-side row
/// [docid, field1, field2, ...] with multi-valued fields flattened.
Row DocumentToRow(const TextRelationDecl& text, const Document& doc);

/// The text-side row carrying only the docid (fields NULL).
Row DocidOnlyRow(const TextRelationDecl& text, const std::string& docid);

/// The all-NULL left row (for doc-side semi-join output).
Row NullLeftRow(const Schema& left_schema);

/// True if `doc` satisfies the join predicates in `mask` for `row`
/// (relational-side string matching; used by the RTP family).
bool DocMatchesRow(const ResolvedSpec& rspec, const Row& row,
                   const Document& doc, PredicateMask mask);

/// Groups row indices by their join-term combination over `mask`.
/// Rows with NULL/non-string join values are dropped (they cannot match).
/// Iteration order is deterministic (lexicographic by terms).
std::map<std::vector<std::string>, std::vector<size_t>> GroupByTerms(
    const ResolvedSpec& rspec, const std::vector<Row>& rows,
    PredicateMask mask);

/// GroupByTerms materialized into parallel indexable vectors (the shape
/// the DistinctKeys stage hands to slot-addressed downstream stages).
struct KeyGroups {
  std::vector<std::vector<std::string>> terms;  ///< Lexicographic order.
  std::vector<std::vector<size_t>> rows;        ///< Parallel to `terms`.
  size_t size() const { return terms.size(); }
};
KeyGroups GroupRowsByTerms(const ResolvedSpec& rspec,
                           const std::vector<Row>& rows, PredicateMask mask);

/// Validates a probe mask: non-zero and within the predicate count.
Status ValidateProbeMask(const ForeignJoinSpec& spec, PredicateMask mask);

/// Charges `docs_scanned` relational string-matching operations (the c_a
/// component) to the source's meter when the source is metered (decorator
/// chains are unwrapped to find the metered source). Free-function form for
/// callers outside a scheduler; StageScheduler::ChargeRelationalMatches
/// adds per-stage attribution on top.
void ChargeRelationalMatches(TextSource& source, uint64_t docs_scanned);

/// True for the placeholder a best-effort fetch skip leaves behind (slot
/// alignment is preserved for callers that index fetched documents by
/// position; real documents always carry a docid).
inline bool IsPlaceholderDoc(const Document& doc) { return doc.docid.empty(); }

// ---------------------------------------------------------------------------
// Scheduler

struct StageCounters;  // Internal per-stage accounting (pipeline.cc).

/// The one scheduler behind every join method. Owns the parallelism (an
/// optional ThreadPool), the FaultPolicy, per-stage accounting, and
/// deterministic failure selection.
///
/// Work units are spawned under a (stage, ordinal) identity and may spawn
/// further units — that is what removes the per-phase barriers: a search
/// unit that answers spawns its fetch units immediately, and those run
/// while other search units are still waiting on the source. Wait() drains
/// everything (the caller participates, so progress is guaranteed even
/// with a saturated or absent pool) and returns the deterministic failure:
/// the non-OK status of the minimum (stage, ordinal) pair.
///
/// All units run even when one fails (matching the historical contract
/// that the meter reflects every issued operation); a failed unit's own
/// downstream units are simply never spawned. Units must therefore make
/// the set of operations they issue a pure function of per-operation
/// outcomes — never of scheduling order — to keep the byte-identity
/// contract.
///
/// A scheduler may be shared across several compositions (the plan
/// executor runs a whole PrL plan — probe reducers plus the foreign join —
/// through one scheduler, composing them into a single DAG); AddStage
/// keeps per-composition stages separate.
class StageScheduler {
 public:
  /// Opaque stage handle; stable for the scheduler's lifetime.
  using StageId = StageCounters*;

  /// `pool` may be null (serial: units run on the Wait()ing thread in
  /// spawn order). `source` and `policy` must outlive the scheduler.
  StageScheduler(ThreadPool* pool, TextSource& source,
                 const FaultPolicy& policy);

  /// Drains any still-pending units (without reporting their failures).
  ~StageScheduler();

  StageScheduler(const StageScheduler&) = delete;
  StageScheduler& operator=(const StageScheduler&) = delete;

  /// Registers a stage. Call from the driving thread (not from units).
  StageId AddStage(const StageDesc& desc);

  /// Arms deadline-aware load shedding: once `deadline` passes (on `clock`;
  /// null = steady_clock), every subsequent Search/Fetch is SHED — it
  /// returns DeadlineExceeded without touching the source, and is recorded
  /// in the policy's degradation sink as a shed operation (which always
  /// marks the result incomplete; under best-effort the query still
  /// finishes with the rows it has, under fail-fast it aborts). Call from
  /// the driving thread before spawning units (publication rides the spawn
  /// queue's mutex).
  void SetDeadline(std::chrono::steady_clock::time_point deadline,
                   SteadyClockFn clock = nullptr);

  /// Operations shed because the query deadline had passed.
  uint64_t shed_operations() const {
    return shed_operations_.load(std::memory_order_relaxed);
  }

  /// Arms cooperative cancellation. Once `token` fires with a kClient /
  /// kShutdown reason, every subsequent Search/Fetch returns kCancelled
  /// without touching the source, and pending units drain WITHOUT running:
  /// their captures are released and each is accounted as a cancelled
  /// operation. kCancelled is permanent (never absorbed by a best-effort
  /// policy), so a cancelled query errors out rather than publishing a
  /// torn row set. A token-armed DEADLINE instead takes the shed path
  /// above (per-op shedding; the query still assembles the rows it has).
  /// The token is also propagated as the ambient CurrentCancelToken() to
  /// whichever thread runs a unit, so source-side decorators (retry
  /// backoff, limiter waits, chaos latency) observe it too. Call from the
  /// driving thread before spawning units.
  void SetCancelToken(CancelToken token);

  /// Source operations + drained units abandoned due to cancellation.
  uint64_t cancelled_operations() const;

  /// Enqueues one unit of `stage`. `ordinal` orders the unit within its
  /// stage for deterministic failure selection; units of one stage should
  /// use distinct ordinals. Safe to call from inside a running unit.
  /// The unit's returned status should already have passed through
  /// HandleSourceFailure where the policy may absorb it.
  void Spawn(StageId stage, uint64_t ordinal, std::function<Status()> fn);

  /// Runs/awaits every pending unit (including ones spawned meanwhile) and
  /// returns the deterministic first failure, or OK. May be called again
  /// after more Spawns; a recorded failure is sticky.
  Status Wait();

  /// Issues a search / fetch against the source, timing the round-trip and
  /// charging the stage's profile (successful operations only; the source
  /// meter itself is charged by the source as always).
  Result<std::vector<std::string>> Search(StageId stage,
                                          const TextQuery& query);
  Result<Document> Fetch(StageId stage, const std::string& docid);

  /// Charges `docs_scanned` relational string-matching operations (the c_a
  /// component) to the source's meter when the source is metered (decorator
  /// chains are unwrapped to find the metered source), and to `stage`'s
  /// profile. The matching itself happens on the database side, but the
  /// experiment harness reads one combined meter, as the paper reports one
  /// combined time.
  void ChargeRelationalMatches(StageId stage, uint64_t docs_scanned);

  /// Adds raw counts to `stage`'s profile — for source operations the
  /// scheduler has no wrapper for (e.g. cooperative SearchBatch).
  void AddStageCounts(StageId stage, uint64_t invocations,
                      uint64_t short_docs, uint64_t long_docs);

  /// Charges one cross-query cache hit to `stage`'s profile, for upstream
  /// operations a method skipped OUTSIDE Search/Fetch (the probing methods
  /// skipping a probe because the session cache already knows its
  /// outcome). Search/Fetch account their own hits.
  void NoteCacheHit(StageId stage);

  /// The caching decorator when the source chain is fronted by one (the
  /// FederationService layering), else null. Probing methods use it for
  /// session-scope probe outcomes.
  CachingTextSource* caching() const { return caching_; }

  /// Decides the fate of a failed source operation under the policy:
  /// returns OK (failure absorbed, recorded in the degradation sink) when
  /// the policy may continue without this operation, the failure status
  /// otherwise. A transient failure is absorbed under best-effort always,
  /// and under retry-then-fail only when `affects_completeness` is false
  /// (advisory operations — reducer probes, cache probes — can be dropped
  /// without changing the answer). Permanent errors always propagate: they
  /// are query bugs, not faults.
  Status HandleSourceFailure(Status status, bool affects_completeness) const;

  TextSource& source() const { return source_; }
  const FaultPolicy& policy() const { return policy_; }
  ThreadPool* pool() const { return pool_; }

  /// Snapshot of the listed stages, in the given order. Call after Wait().
  PipelineProfile Profile(const std::vector<StageId>& ids) const;

 private:
  friend class OpTimer;
  friend class ScopedStageTimer;

  struct State;
  struct Task;

  /// Pops and runs one queued unit; false if the queue was empty.
  static bool DrainOne(State& state);
  static void ExecuteTask(State& state, Task task);

  /// OK, or the cancel/shed status when the armed token has fired or the
  /// armed deadline has passed (token checked first).
  Status CheckDeadline(StageId stage);

  /// Accounts an operation whose source call came back kCancelled: the
  /// token fired MID-call (after the dispatch checkpoint passed), so the
  /// dropped work must still reach the cancelled counters and the
  /// degradation sink for the report to stay honest.
  void NoteCancelledResult(const Status& status);

  ThreadPool* pool_;
  TextSource& source_;
  CachingTextSource* caching_;  ///< Front of the chain when caching is on.
  FaultPolicy policy_;
  std::shared_ptr<State> state_;  ///< Shared with enqueued pool jobs.

  // Deadline shedding; written once before units spawn, read by units.
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  SteadyClockFn deadline_clock_;
  mutable std::atomic<uint64_t> shed_operations_{0};
};

/// RAII timer around one source round-trip issued on behalf of `stage`:
/// the elapsed time is charged to the stage and excluded from the
/// enclosing unit's own time. Used internally by Search/Fetch; exposed for
/// operations the scheduler has no wrapper for (SearchBatch).
class OpTimer {
 public:
  OpTimer(StageScheduler& sched, StageScheduler::StageId stage);
  ~OpTimer();
  OpTimer(const OpTimer&) = delete;
  OpTimer& operator=(const OpTimer&) = delete;

 private:
  StageScheduler::StageId stage_;
  std::chrono::steady_clock::time_point start_;
};

/// RAII timer for driver-side serial stages (DistinctKeys, QueryBuild,
/// Assemble) that run inline rather than as spawned units: charges the
/// scope's elapsed time (minus any inner source operations) and `units`
/// units to the stage.
class ScopedStageTimer {
 public:
  ScopedStageTimer(StageScheduler& sched, StageScheduler::StageId stage,
                   uint64_t units = 1);
  ~ScopedStageTimer();
  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  StageScheduler::StageId stage_;
  uint64_t units_;
  std::chrono::steady_clock::time_point start_;
  uint64_t op_ns_at_start_;
};

/// Slot-addressed asynchronous document retrieval. Each Fetch() reserves a
/// stable slot and spawns a fetch unit; after the scheduler drains, doc()
/// returns the slot's document — or the empty placeholder (see
/// IsPlaceholderDoc) when a best-effort policy absorbed the fetch failure.
/// Exactly one source Fetch is issued per call (deduplication is the
/// caller's concern, as it defines the method's cost).
///
/// The two-argument form chains a continuation: on fetch success, `then`
/// runs as a unit of `then_stage` with the fetched document — the
/// RTP-family match stage, overlapped with everything else.
class DocFetcher {
 public:
  DocFetcher(StageScheduler& sched, StageScheduler::StageId stage)
      : sched_(sched), stage_(stage) {}

  size_t Fetch(const std::string& docid);
  size_t Fetch(const std::string& docid, StageScheduler::StageId then_stage,
               std::function<Status(const Document&)> then);

  /// The document in `slot`. Valid only after the scheduler drained.
  const Document& doc(size_t slot) const;
  size_t size() const;

 private:
  StageScheduler& sched_;
  StageScheduler::StageId stage_;
  mutable std::mutex mu_;
  std::deque<Document> docs_;  ///< deque: growth keeps element addresses.
};

// ---------------------------------------------------------------------------
// Pipeline: lowering + execution

/// Everything a method composition needs: the resolved spec, the input,
/// the scheduler, and its lowered stages.
struct MethodContext {
  const ResolvedSpec& rspec;
  const std::vector<Row>& left_rows;
  PredicateMask probe_mask;
  StageScheduler& sched;
  const std::vector<StageDesc>* stage_descs = nullptr;
  std::vector<StageScheduler::StageId> stage_ids;  ///< Parallel to descs.

  /// The registered id of the composition's `kind` stage (each kind
  /// appears at most once per lowering). CHECK-fails if absent.
  StageScheduler::StageId Stage(StageKind kind) const;
};

/// A join method lowered to its stage composition. Lower() performs the
/// method-applicability validation (the paper's preconditions), so an
/// accidental recomposition — or an inapplicable method — surfaces before
/// any source traffic.
class Pipeline {
 public:
  static Result<Pipeline> Lower(JoinMethodKind method,
                                const ForeignJoinSpec& spec,
                                PredicateMask probe_mask = 0);

  JoinMethodKind method() const { return method_; }
  PredicateMask probe_mask() const { return probe_mask_; }
  const std::vector<StageDesc>& stages() const { return stages_; }

  /// "SJ: DistinctKeys(all-preds) -> QueryBuild(or-batch+resplit) -> ...".
  std::string ToString() const;

  /// Executes the composition. `spec` must be the spec Lower() saw. When
  /// `scheduler` is non-null the composition joins that scheduler's DAG
  /// (its pool/source/policy win and `pool`/`policy` are ignored);
  /// otherwise a private scheduler over `pool` is used. `profile`, when
  /// non-null, receives the per-stage account.
  Result<ForeignJoinResult> Execute(const ForeignJoinSpec& spec,
                                    const std::vector<Row>& left_rows,
                                    TextSource& source,
                                    ThreadPool* pool = nullptr,
                                    const FaultPolicy& policy = {},
                                    PipelineProfile* profile = nullptr,
                                    StageScheduler* scheduler = nullptr) const;

 private:
  Pipeline(JoinMethodKind method, PredicateMask probe_mask,
           std::vector<StageDesc> stages)
      : method_(method),
        probe_mask_(probe_mask),
        stages_(std::move(stages)) {}

  JoinMethodKind method_;
  PredicateMask probe_mask_;
  std::vector<StageDesc> stages_;
};

// ---------------------------------------------------------------------------
// Method compositions (defined in the per-method files; dispatched by
// Pipeline::Execute). Internal to the execution layer.

Result<ForeignJoinResult> RunTS(MethodContext& ctx);     // tuple_substitution.cc
Result<ForeignJoinResult> RunRTP(MethodContext& ctx);    // rtp.cc
Result<ForeignJoinResult> RunSJ(MethodContext& ctx);     // semi_join.cc
Result<ForeignJoinResult> RunSJRTP(MethodContext& ctx);  // semi_join.cc
Result<ForeignJoinResult> RunPTS(MethodContext& ctx);    // probing.cc
Result<ForeignJoinResult> RunPRTP(MethodContext& ctx);   // probing.cc

}  // namespace textjoin::pipeline

#endif  // TEXTJOIN_CORE_PIPELINE_H_
