#include "core/join_methods.h"

#include "core/join_method_impls.h"
#include "core/join_methods_internal.h"

namespace textjoin {

const char* JoinMethodName(JoinMethodKind kind) {
  switch (kind) {
    case JoinMethodKind::kTS:
      return "TS";
    case JoinMethodKind::kRTP:
      return "RTP";
    case JoinMethodKind::kSJ:
      return "SJ";
    case JoinMethodKind::kSJRTP:
      return "SJ+RTP";
    case JoinMethodKind::kPTS:
      return "P+TS";
    case JoinMethodKind::kPRTP:
      return "P+RTP";
  }
  return "?";
}

Result<ForeignJoinResult> ExecuteForeignJoin(JoinMethodKind method,
                                             const ForeignJoinSpec& spec,
                                             const std::vector<Row>& left_rows,
                                             TextSource& source,
                                             PredicateMask probe_mask,
                                             ThreadPool* pool,
                                             const FaultPolicy& policy) {
  TEXTJOIN_ASSIGN_OR_RETURN(internal::ResolvedSpec rspec,
                            internal::ResolveSpec(spec));
  const bool is_probe_method = method == JoinMethodKind::kPTS ||
                               method == JoinMethodKind::kPRTP;
  if (!is_probe_method && probe_mask != 0) {
    return Status::InvalidArgument(
        std::string("probe mask given to non-probing method ") +
        JoinMethodName(method));
  }
  switch (method) {
    case JoinMethodKind::kTS:
      return internal::ExecuteTS(rspec, left_rows, source, pool, policy);
    case JoinMethodKind::kRTP:
      return internal::ExecuteRTP(rspec, left_rows, source, pool, policy);
    case JoinMethodKind::kSJ:
      return internal::ExecuteSJ(rspec, left_rows, source, pool, policy);
    case JoinMethodKind::kSJRTP:
      return internal::ExecuteSJRTP(rspec, left_rows, source, pool, policy);
    case JoinMethodKind::kPTS:
      return internal::ExecutePTS(rspec, left_rows, source, probe_mask, pool,
                                  policy);
    case JoinMethodKind::kPRTP:
      return internal::ExecutePRTP(rspec, left_rows, source, probe_mask, pool,
                                   policy);
  }
  TEXTJOIN_UNREACHABLE("bad JoinMethodKind");
}

}  // namespace textjoin
