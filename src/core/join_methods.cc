#include "core/join_methods.h"

#include "core/pipeline.h"

namespace textjoin {

const char* JoinMethodName(JoinMethodKind kind) {
  switch (kind) {
    case JoinMethodKind::kTS:
      return "TS";
    case JoinMethodKind::kRTP:
      return "RTP";
    case JoinMethodKind::kSJ:
      return "SJ";
    case JoinMethodKind::kSJRTP:
      return "SJ+RTP";
    case JoinMethodKind::kPTS:
      return "P+TS";
    case JoinMethodKind::kPRTP:
      return "P+RTP";
  }
  return "?";
}

Result<ForeignJoinResult> ExecuteForeignJoin(
    JoinMethodKind method, const ForeignJoinSpec& spec,
    const std::vector<Row>& left_rows, TextSource& source,
    PredicateMask probe_mask, ThreadPool* pool, const FaultPolicy& policy,
    pipeline::PipelineProfile* stage_profile) {
  TEXTJOIN_ASSIGN_OR_RETURN(
      pipeline::Pipeline plan,
      pipeline::Pipeline::Lower(method, spec, probe_mask));
  return plan.Execute(spec, left_rows, source, pool, policy, stage_profile);
}

}  // namespace textjoin
