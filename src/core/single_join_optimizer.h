#ifndef TEXTJOIN_CORE_SINGLE_JOIN_OPTIMIZER_H_
#define TEXTJOIN_CORE_SINGLE_JOIN_OPTIMIZER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/cost_model.h"
#include "core/join_methods.h"

/// \file
/// Optimization of single-join queries (paper Section 5): choose among the
/// join methods and, for probe-based methods, the optimal set of probe
/// columns. Theorem 5.3 bounds the optimal probe set at min(k, 2g)
/// columns, so the bounded search enumerates only subsets up to that size;
/// an exhaustive 2^k mode exists for validating the bound.

namespace textjoin {

/// One costed alternative.
struct MethodChoice {
  JoinMethodKind method = JoinMethodKind::kTS;
  PredicateMask probe_mask = 0;  ///< Probe columns for kPTS / kPRTP.
  double predicted_cost = 0.0;

  std::string ToString() const;
};

/// What the query's shape permits (derived from the query by the caller).
struct MethodApplicability {
  bool has_selections = false;       ///< Text selections present (RTP needs
                                     ///< them).
  bool left_columns_needed = true;   ///< Output/later operators read outer
                                     ///< columns (forbids plain SJ).
  bool need_document_fields = true;  ///< Output reads document fields.
};

/// Ranks and chooses join methods using the Section 4 cost model.
class SingleJoinOptimizer {
 public:
  /// `model` must outlive the optimizer.
  explicit SingleJoinOptimizer(const CostModel* model) : model_(model) {}

  /// The Theorem 5.3 bound on probe-set size: min(k, 2g).
  size_t MaxProbeColumns() const;

  /// The cheapest probe mask for the given probe-based method. With
  /// `exhaustive` set, searches all 2^k - 1 subsets (O(2^k)); otherwise
  /// only subsets within the Theorem 5.3 bound (O(k^(2g))).
  Result<MethodChoice> BestProbe(JoinMethodKind method,
                                 bool exhaustive = false) const;

  /// Every applicable method with its predicted cost, cheapest first.
  /// Probe-based entries carry their individually optimal masks.
  std::vector<MethodChoice> RankMethods(const MethodApplicability& app,
                                        bool exhaustive = false) const;

  /// The cheapest applicable method. Fails if none is applicable (cannot
  /// happen for well-formed foreign joins: TS is universal).
  Result<MethodChoice> Choose(const MethodApplicability& app) const;

 private:
  double CostOf(JoinMethodKind method, PredicateMask mask) const;

  const CostModel* model_;
};

}  // namespace textjoin

#endif  // TEXTJOIN_CORE_SINGLE_JOIN_OPTIMIZER_H_
