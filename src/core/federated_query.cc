#include "core/federated_query.h"

#include "common/string_util.h"

namespace textjoin {

Schema TextRelationDecl::ToSchema() const {
  Schema schema;
  schema.AddColumn(Column{alias, "docid", ValueType::kString});
  for (const std::string& field : fields) {
    schema.AddColumn(Column{alias, field, ValueType::kString});
  }
  return schema;
}

bool TextRelationDecl::HasField(const std::string& field) const {
  for (const std::string& f : fields) {
    if (EqualsIgnoreCase(f, field)) return true;
  }
  return false;
}

std::string AggregateItem::Name() const {
  switch (kind) {
    case Kind::kCountStar:
      return "count(*)";
    case Kind::kCount:
      return "count(" + column + ")";
    case Kind::kMin:
      return "min(" + column + ")";
    case Kind::kMax:
      return "max(" + column + ")";
    case Kind::kSum:
      return "sum(" + column + ")";
    case Kind::kAvg:
      return "avg(" + column + ")";
  }
  return "?";
}

FederatedQuery FederatedQuery::Clone() const {
  FederatedQuery copy;
  copy.relations = relations;
  copy.text = text;
  copy.has_text_relation = has_text_relation;
  copy.relational_predicates.reserve(relational_predicates.size());
  for (const ExprPtr& p : relational_predicates) {
    copy.relational_predicates.push_back(p->Clone());
  }
  copy.text_selections = text_selections;
  copy.text_joins = text_joins;
  copy.output_columns = output_columns;
  copy.distinct = distinct;
  copy.aggregates = aggregates;
  copy.group_by = group_by;
  copy.order_by = order_by;
  copy.limit = limit;
  return copy;
}

Result<const RelationRef*> FederatedQuery::FindRelation(
    const std::string& name) const {
  for (const RelationRef& rel : relations) {
    if (EqualsIgnoreCase(rel.name(), name)) return &rel;
  }
  return Status::NotFound("no relation named '" + name + "' in query");
}

bool FederatedQuery::NeedsDocumentFields() const {
  if (!has_text_relation) return false;
  auto is_text_field = [this](const std::string& ref) {
    const size_t dot = ref.find('.');
    if (dot == std::string::npos) return false;
    return EqualsIgnoreCase(ref.substr(0, dot), text.alias) &&
           !EqualsIgnoreCase(ref.substr(dot + 1), "docid");
  };
  if (!aggregates.empty()) {
    for (const std::string& ref : group_by) {
      if (is_text_field(ref)) return true;
    }
    for (const AggregateItem& agg : aggregates) {
      if (!agg.column.empty() && is_text_field(agg.column)) return true;
    }
    return false;
  }
  if (output_columns.empty()) return !text.fields.empty();  // SELECT *
  for (const std::string& ref : output_columns) {
    if (is_text_field(ref)) return true;
  }
  return false;
}

std::string FederatedQuery::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  if (!aggregates.empty()) {
    std::vector<std::string> items = group_by;
    for (const AggregateItem& agg : aggregates) items.push_back(agg.Name());
    out += Join(items, ", ");
  } else if (output_columns.empty()) {
    out += "*";
  } else {
    for (size_t i = 0; i < output_columns.size(); ++i) {
      if (i != 0) out += ", ";
      out += output_columns[i];
    }
  }
  out += " FROM ";
  for (size_t i = 0; i < relations.size(); ++i) {
    if (i != 0) out += ", ";
    out += relations[i].table_name;
    if (!relations[i].alias.empty() &&
        relations[i].alias != relations[i].table_name) {
      out += " " + relations[i].alias;
    }
  }
  if (has_text_relation) {
    if (!relations.empty()) out += ", ";
    out += text.alias;
  }
  std::vector<std::string> conjuncts;
  for (const ExprPtr& p : relational_predicates) {
    conjuncts.push_back(p->ToString());
  }
  for (const TextSelection& s : text_selections) {
    conjuncts.push_back("'" + s.term + "' in " + text.alias + "." + s.field);
  }
  for (const TextJoinPredicate& j : text_joins) {
    conjuncts.push_back(j.column_ref + " in " + text.alias + "." + j.field);
  }
  if (!conjuncts.empty()) {
    out += " WHERE ";
    out += Join(conjuncts, " AND ");
  }
  if (!group_by.empty()) {
    out += " GROUP BY " + Join(group_by, ", ");
  }
  if (!order_by.empty()) {
    out += " ORDER BY " + Join(order_by, ", ");
  }
  if (limit != kNoLimit) {
    out += " LIMIT " + std::to_string(limit);
  }
  return out;
}

}  // namespace textjoin
