// Multi-join optimization walkthrough (paper Section 6 / Example 6.1):
// optimizes the Q5-style query "students who co-authored 1993 reports with
// faculty from another department" in both the traditional left-deep space
// and the extended PrL space, prints both plans, and executes the winner.
//
//   $ ./examples/optimizer_explain

#include <cstdio>

#include "connector/remote_text_source.h"
#include "core/enumerator.h"
#include "core/executor.h"
#include "core/statistics.h"
#include "workload/paper_queries.h"

namespace {

using namespace textjoin;  // Example code; the library never does this.

int Run() {
  Q5Config config;
  Result<PaperScenario> built = BuildQ5(config);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  Scenario& scenario = built->scenario;
  const FederatedQuery& query = built->query;
  RemoteTextSource source(scenario.engine.get());
  std::printf("Query (paper Q5 / Example 6.1):\n  %s\n\n",
              query.ToString().c_str());

  StatsRegistry registry;
  Status stats = ComputeExactStats(query, *scenario.catalog,
                                   *scenario.engine, registry);
  if (!stats.ok()) {
    std::fprintf(stderr, "stats: %s\n", stats.ToString().c_str());
    return 1;
  }
  for (const TextJoinPredicate& pred : query.text_joins) {
    auto s = registry.GetTextJoinStats(pred.column_ref, pred.field);
    std::printf("  stats %-28s s=%.3f f=%.3f\n", pred.ToString().c_str(),
                s->selectivity, s->fanout);
  }
  std::printf("\n");

  const CostParams params;
  for (const bool enable_probes : {false, true}) {
    EnumeratorOptions options;
    options.enable_probes = enable_probes;
    Enumerator enumerator(scenario.catalog.get(), &registry,
                          scenario.engine->num_documents(),
                          scenario.engine->max_search_terms(), options);
    Result<PlanNodePtr> plan = enumerator.Optimize(query);
    if (!plan.ok()) {
      std::fprintf(stderr, "optimize: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    std::printf("=== %s space ===\n",
                enable_probes ? "PrL (left-deep + probe nodes)"
                              : "traditional left-deep");
    std::printf("%s", (*plan)->ToString(query).c_str());
    std::printf("enumeration: %llu join tasks, %llu plans costed\n",
                static_cast<unsigned long long>(
                    enumerator.report().join_tasks),
                static_cast<unsigned long long>(
                    enumerator.report().plans_generated));

    source.ResetMeter();
    PlanExecutor executor(scenario.catalog.get(), &source);
    Result<ExecutionResult> result = executor.Execute(**plan, query);
    if (!result.ok()) {
      std::fprintf(stderr, "execute: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("measured: %.2f simulated seconds, %zu result rows (%s)\n\n",
                source.meter().SimulatedSeconds(params),
                result->rows.size(), source.meter().ToString().c_str());
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
