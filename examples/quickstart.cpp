// Quickstart: stand up a database + external text source and run a
// federated SQL query end to end through the FederationService session
// API.
//
//   $ ./examples/quickstart
//
// Each Run() call returns a self-contained QueryOutcome: the rows, the
// chosen plan, a per-node execution profile, and the access-meter delta of
// exactly that query — the paper's cost accounting, per call.

#include <cstdio>

#include "sql/federation_service.h"
#include "sql/parser.h"
#include "workload/university.h"

namespace {

using namespace textjoin;  // Example code; the library never does this.

int Run() {
  // 1. Generate a university database plus a bibliographic text server.
  UniversityConfig config;
  config.num_students = 80;
  config.num_documents = 1500;
  Result<UniversityWorkload> workload = BuildUniversity(config);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }

  // 2. Stand up the federation. Options declare how the engine appears as
  // a relation, and how many text-source operations may be in flight at
  // once (parallelism changes wall-clock time only — results and meter
  // totals are identical to serial execution).
  FederationService::Options options;
  options.text = workload->text;
  options.parallelism = 4;
  FederationService service(workload->catalog.get(), workload->engine.get(),
                            options);

  // 3. Run a federated query: a join between the student relation and the
  // external 'mercury' text source.
  const std::string sql =
      "select student.name, student.advisor, mercury.docid, mercury.title "
      "from student, mercury "
      "where student.year > 3 "
      "and 'query optimization' in mercury.title "
      "and student.name in mercury.author";
  Result<QueryOutcome> outcome = service.Run(sql);
  if (!outcome.ok()) {
    std::fprintf(stderr, "run: %s\n", outcome.status().ToString().c_str());
    return 1;
  }

  // 4. The outcome carries the plan the optimizer chose (TS / RTP /
  // SJ+RTP / P+TS / P+RTP, plus probe columns for probing methods)...
  std::printf("Plan:\n%s\n", outcome->chosen_plan.c_str());

  // 5. ...the result rows...
  std::printf("Results (%zu rows):\n", outcome->rows.rows.size());
  for (const Row& row : outcome->rows.rows) {
    std::printf("  %s\n", RowToString(row).c_str());
  }

  // 6. ...and what exactly this call cost: the meter counted every server
  // interaction; the simulated seconds use the paper's calibrated
  // constants.
  const CostParams params;
  std::printf("\nAccess meter: %s\n", outcome->meter_delta.ToString().c_str());
  std::printf("Simulated execution time: %.2f s (c_i=%.0f c_p=%.0e "
              "c_s=%.3f c_l=%.0f)\n",
              outcome->meter_delta.SimulatedSeconds(params), params.invocation,
              params.per_posting, params.short_form, params.long_form);
  return 0;
}

}  // namespace

int main() { return Run(); }
