// Quickstart: stand up a database + external text source, register
// statistics, and run a federated SQL query end to end.
//
//   $ ./examples/quickstart
//
// Walks through the whole public API surface: workload generation, SQL
// parsing, statistics, optimization (EXPLAIN), execution, and the access
// meter that implements the paper's cost accounting.

#include <cstdio>

#include "connector/remote_text_source.h"
#include "core/enumerator.h"
#include "core/executor.h"
#include "core/statistics.h"
#include "sql/parser.h"
#include "workload/university.h"

namespace {

using namespace textjoin;  // Example code; the library never does this.

int Run() {
  // 1. Generate a university database plus a bibliographic text server.
  UniversityConfig config;
  config.num_students = 80;
  config.num_documents = 1500;
  Result<UniversityWorkload> workload = BuildUniversity(config);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  RemoteTextSource source(workload->engine.get());

  // 2. Parse a federated query: a join between the student relation and
  // the external 'mercury' text source.
  const std::string sql =
      "select student.name, student.advisor, mercury.docid, mercury.title "
      "from student, mercury "
      "where student.year > 3 "
      "and 'query optimization' in mercury.title "
      "and student.name in mercury.author";
  Result<FederatedQuery> query = ParseQuery(sql, workload->text);
  if (!query.ok()) {
    std::fprintf(stderr, "parse: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("Query:\n  %s\n\n", query->ToString().c_str());

  // 3. Gather the statistics the optimizer needs (oracle mode here; see
  // connector/sampler.h for the sampling path).
  StatsRegistry registry;
  Status stats = ComputeExactStats(*query, *workload->catalog,
                                   *workload->engine, registry);
  if (!stats.ok()) {
    std::fprintf(stderr, "stats: %s\n", stats.ToString().c_str());
    return 1;
  }

  // 4. Optimize. The enumerator picks a join method (TS / RTP / SJ+RTP /
  // P+TS / P+RTP) and, for probing methods, the probe columns.
  Enumerator enumerator(workload->catalog.get(), &registry,
                        workload->engine->num_documents(),
                        workload->engine->max_search_terms(),
                        EnumeratorOptions{});
  Result<PlanNodePtr> plan = enumerator.Optimize(*query);
  if (!plan.ok()) {
    std::fprintf(stderr, "optimize: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("Plan:\n%s\n", (*plan)->ToString(*query).c_str());

  // 5. Execute and print the result rows.
  PlanExecutor executor(workload->catalog.get(), &source);
  Result<ExecutionResult> result = executor.Execute(**plan, *query);
  if (!result.ok()) {
    std::fprintf(stderr, "execute: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("Results (%zu rows):\n", result->rows.size());
  for (const Row& row : result->rows) {
    std::printf("  %s\n", RowToString(row).c_str());
  }

  // 6. What did it cost? The meter counted every server interaction; the
  // simulated seconds use the paper's calibrated constants.
  const CostParams params;
  std::printf("\nAccess meter: %s\n", source.meter().ToString().c_str());
  std::printf("Simulated execution time: %.2f s (c_i=%.0f c_p=%.0e "
              "c_s=%.3f c_l=%.0f)\n",
              source.meter().SimulatedSeconds(params), params.invocation,
              params.per_posting, params.short_form, params.long_form);
  return 0;
}

}  // namespace

int main() { return Run(); }
