// A digital-library deployment scenario (the paper's motivating setting —
// "comprehensive digital libraries [Cor94, CMU94]"): build and *persist* a
// technical-report collection, then serve federated queries from the
// on-disk index (posting lists on disk, directory in memory, per [DH91])
// and compare against the fully in-memory server.
//
//   $ ./examples/digital_library

#include <cstdio>
#include <string>

#include "connector/remote_text_source.h"
#include "core/enumerator.h"
#include "core/executor.h"
#include "core/statistics.h"
#include "sql/parser.h"
#include "text/storage.h"
#include "workload/university.h"

namespace {

using namespace textjoin;  // Example code; the library never does this.

int Run() {
  // 1. Build the collection and persist it: one corpus file (documents)
  // and one index file (directory + posting lists).
  UniversityConfig config;
  config.num_students = 120;
  config.num_documents = 5000;
  Result<UniversityWorkload> workload = BuildUniversity(config);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  const std::string corpus_path = "/tmp/textjoin_library.tjc";
  const std::string index_path = "/tmp/textjoin_library.tji";
  if (!WriteCorpusFile(*workload->engine, corpus_path).ok() ||
      !WriteIndexFile(*workload->engine, index_path).ok()) {
    std::fprintf(stderr, "failed to persist the library\n");
    return 1;
  }
  std::printf("library persisted: %zu documents, %llu postings\n",
              workload->engine->num_documents(),
              static_cast<unsigned long long>(
                  workload->engine->index().TotalPostings()));

  // 2. Reopen as a lists-on-disk server.
  Result<std::unique_ptr<DiskTextEngine>> disk =
      DiskTextEngine::Open(corpus_path, index_path);
  if (!disk.ok()) {
    std::fprintf(stderr, "%s\n", disk.status().ToString().c_str());
    return 1;
  }
  std::printf("disk server opened: directory of %zu lists in memory, "
              "postings read on demand\n\n",
              (*disk)->index().directory_size());

  // 3. The same federated query against both servers must agree; the
  // access meter (the paper's cost model) is identical because the
  // loose-integration boundary is the same.
  const std::string sql =
      "select distinct student.name, mercury.docid "
      "from student, mercury "
      "where student.year > 3 "
      "and student.advisor in mercury.author "
      "and student.name in mercury.author "
      "order by student.name";
  Result<FederatedQuery> query = ParseQuery(sql, workload->text);
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n\n", query->ToString().c_str());

  StatsRegistry registry;
  Status st = ComputeExactStats(*query, *workload->catalog,
                                *workload->engine, registry);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  Enumerator enumerator(workload->catalog.get(), &registry,
                        workload->engine->num_documents(),
                        workload->engine->max_search_terms(),
                        EnumeratorOptions{});
  Result<PlanNodePtr> plan = enumerator.Optimize(*query);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }

  const CostParams params;
  for (int mode = 0; mode < 2; ++mode) {
    const SearchableCorpus* corpus =
        mode == 0
            ? static_cast<const SearchableCorpus*>(workload->engine.get())
            : disk->get();
    RemoteTextSource source(corpus);
    PlanExecutor executor(workload->catalog.get(), &source);
    Result<ExecutionResult> result = executor.Execute(**plan, *query);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("[%s] %zu rows, meter %s (%.2f simulated s)\n",
                mode == 0 ? "memory" : "disk  ", result->rows.size(),
                source.meter().ToString().c_str(),
                source.meter().SimulatedSeconds(params));
    if (mode == 1) {
      for (size_t i = 0; i < std::min<size_t>(result->rows.size(), 8); ++i) {
        std::printf("    %s\n", RowToString(result->rows[i]).c_str());
      }
    }
  }
  std::remove(corpus_path.c_str());
  std::remove(index_path.c_str());
  return 0;
}

}  // namespace

int main() { return Run(); }
