// The paper's running example: a university database loosely integrated
// with a CSTR-style bibliographic server. Runs the four single-join
// queries Q1-Q4 of the paper under every applicable join method and prints
// a Table-2-style comparison of simulated execution times.
//
//   $ ./examples/university_library

#include <cstdio>
#include <string>
#include <vector>

#include "connector/remote_text_source.h"
#include "core/join_methods.h"
#include "core/single_join_optimizer.h"
#include "sql/parser.h"
#include "workload/university.h"

namespace {

using namespace textjoin;  // Example code; the library never does this.

struct QuerySpec {
  const char* label;
  std::string sql;
};

/// Builds the foreign-join spec for a parsed single-relation query and
/// returns the filtered outer rows.
Result<std::pair<ForeignJoinSpec, std::vector<Row>>> Prepare(
    const FederatedQuery& query, const Catalog& catalog) {
  TEXTJOIN_ASSIGN_OR_RETURN(Table * table,
                            catalog.GetTable(query.relations[0].table_name));
  ForeignJoinSpec spec;
  spec.left_schema =
      table->schema().WithQualifier(query.relations[0].name());
  spec.selections = query.text_selections;
  spec.joins = query.text_joins;
  spec.text = query.text;
  spec.need_document_fields = query.NeedsDocumentFields();
  bool needs_left = query.output_columns.empty();
  for (const std::string& ref : query.output_columns) {
    if (spec.left_schema.Resolve(ref).ok()) needs_left = true;
  }
  spec.left_columns_needed = needs_left;

  // Push the relational selections down onto the scan.
  std::vector<Row> rows;
  for (const Row& row : table->rows()) {
    bool pass = true;
    for (const ExprPtr& pred : query.relational_predicates) {
      ExprPtr bound = pred->Clone();
      TEXTJOIN_RETURN_IF_ERROR(bound->Bind(spec.left_schema));
      if (!ValueIsTrue(bound->Eval(row))) {
        pass = false;
        break;
      }
    }
    if (pass) rows.push_back(row);
  }
  return std::make_pair(std::move(spec), std::move(rows));
}

int Run() {
  UniversityConfig config;
  config.num_students = 150;
  config.num_documents = 4000;
  Result<UniversityWorkload> workload = BuildUniversity(config);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  RemoteTextSource source(workload->engine.get());
  const CostParams params;

  const std::vector<QuerySpec> queries = {
      {"Q1 (selective selection)",
       "select * from student, mercury "
       "where student.year > 3 and 'belief update' in mercury.title "
       "and student.name in mercury.author"},
      {"Q2 (docid-only semi-join)",
       "select mercury.docid from student, mercury "
       "where student.year > 2 and 'retrieval' in mercury.title "
       "and student.name in mercury.author"},
      {"Q3 (two join predicates)",
       "select project.member, project.name, mercury.docid "
       "from project, mercury where project.sponsor = 'NSF' "
       "and project.name in mercury.title "
       "and project.member in mercury.author"},
      {"Q4 (advisor co-authorship)",
       "select student.name, mercury.docid from student, mercury "
       "where student.area = 'distributed systems' "
       "and student.advisor in mercury.author "
       "and student.name in mercury.author"},
  };

  for (const QuerySpec& qs : queries) {
    Result<FederatedQuery> query = ParseQuery(qs.sql, workload->text);
    if (!query.ok()) {
      std::fprintf(stderr, "parse %s: %s\n", qs.label,
                   query.status().ToString().c_str());
      return 1;
    }
    auto prepared = Prepare(*query, *workload->catalog);
    if (!prepared.ok()) {
      std::fprintf(stderr, "%s\n", prepared.status().ToString().c_str());
      return 1;
    }
    const ForeignJoinSpec& spec = prepared->first;
    const std::vector<Row>& rows = prepared->second;

    std::printf("%s\n  %s\n  outer tuples after selections: %zu\n",
                qs.label, query->ToString().c_str(), rows.size());
    std::printf("  %-8s %12s %8s %s\n", "method", "sim-time(s)", "rows",
                "meter");

    struct Alt {
      JoinMethodKind method;
      PredicateMask mask;
    };
    std::vector<Alt> alts = {{JoinMethodKind::kTS, 0},
                             {JoinMethodKind::kRTP, 0},
                             {JoinMethodKind::kSJ, 0},
                             {JoinMethodKind::kSJRTP, 0}};
    const size_t k = spec.joins.size();
    for (PredicateMask m = 1; m < (1u << k); ++m) {
      alts.push_back({JoinMethodKind::kPTS, m});
      alts.push_back({JoinMethodKind::kPRTP, m});
    }
    for (const Alt& alt : alts) {
      source.ResetMeter();
      Result<ForeignJoinResult> result =
          ExecuteForeignJoin(alt.method, spec, rows, source, alt.mask);
      std::string name = JoinMethodName(alt.method);
      if (alt.mask != 0) name += MaskToString(alt.mask);
      if (!result.ok()) {
        std::printf("  %-8s %12s\n", name.c_str(), "n/a");
        continue;
      }
      std::printf("  %-8s %12.2f %8zu %s\n", name.c_str(),
                  source.meter().SimulatedSeconds(params),
                  result->rows.size(), source.meter().ToString().c_str());
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
