// An interactive SQL shell over the university federation — the kind of
// front door a downstream user of the library would build first. Reads one
// query per line; meta-commands:
//
//   \tables            list relations and the text relation
//   \explain <sql>     show the optimized plan without executing
//   \analyze <sql>     execute and show per-node actuals (EXPLAIN ANALYZE)
//   \meter             cumulative access-meter and simulated seconds
//   \demo              run a canned tour of queries
//   \quit              exit
//
// When stdin is not a terminal (e.g. in CI), runs the demo and exits, so
// the binary is safe to execute unattended.

#include <cstdio>
#include <string>

#include <unistd.h>

#include "common/string_util.h"
#include "sql/federation_service.h"
#include "sql/parser.h"
#include "workload/university.h"

namespace {

using namespace textjoin;  // Example code; the library never does this.

void PrintResult(const ExecutionResult& result) {
  // Header.
  for (size_t c = 0; c < result.schema.num_columns(); ++c) {
    std::printf("%s%s", c == 0 ? "" : " | ",
                result.schema.column(c).QualifiedName().c_str());
  }
  std::printf("\n");
  const size_t shown = std::min<size_t>(result.rows.size(), 25);
  for (size_t r = 0; r < shown; ++r) {
    const Row& row = result.rows[r];
    for (size_t c = 0; c < row.size(); ++c) {
      std::string cell = row[c].ToString();
      if (cell.size() > 42) cell = cell.substr(0, 39) + "...";
      std::printf("%s%s", c == 0 ? "" : " | ", cell.c_str());
    }
    std::printf("\n");
  }
  if (result.rows.size() > shown) {
    std::printf("... (%zu rows total)\n", result.rows.size());
  } else {
    std::printf("(%zu rows)\n", result.rows.size());
  }
}

class Shell {
 public:
  explicit Shell(UniversityWorkload workload)
      : workload_(std::move(workload)),
        service_(workload_.catalog.get(), workload_.engine.get(),
                 MakeOptions(workload_)) {}

  static FederationService::Options MakeOptions(
      const UniversityWorkload& workload) {
    FederationService::Options options;
    options.text = workload.text;
    options.parallelism = 4;
    return options;
  }

  void HandleLine(const std::string& raw) {
    const std::string line = std::string(Trim(raw));
    if (line.empty()) return;
    if (line == "\\quit" || line == "\\q") {
      done_ = true;
      return;
    }
    if (line == "\\tables") {
      for (const std::string& name : workload_.catalog->TableNames()) {
        Table* table = *workload_.catalog->GetTable(name);
        std::printf("  %-10s %6zu rows  %s\n", name.c_str(),
                    table->num_rows(), table->schema().ToString().c_str());
      }
      std::printf("  %-10s %6zu docs  fields: %s (external text source)\n",
                  workload_.text.alias.c_str(),
                  workload_.engine->num_documents(),
                  Join(workload_.text.fields, ", ").c_str());
      return;
    }
    if (line == "\\meter") {
      const CostParams params;
      std::printf("  %s => %.2f simulated seconds\n",
                  service_.meter().ToString().c_str(),
                  service_.meter().SimulatedSeconds(params));
      return;
    }
    if (line == "\\demo") {
      RunDemo();
      return;
    }
    if (StartsWith(line, "\\explain ")) {
      auto text = service_.Explain(line.substr(9));
      if (!text.ok()) {
        std::printf("error: %s\n", text.status().ToString().c_str());
        return;
      }
      std::printf("%s", text->c_str());
      return;
    }
    if (StartsWith(line, "\\analyze ")) {
      Analyze(line.substr(9));
      return;
    }
    if (line[0] == '\\') {
      std::printf("unknown command; try \\tables \\explain \\analyze "
                  "\\meter \\demo \\quit\n");
      return;
    }
    auto outcome = service_.Run(line);
    if (!outcome.ok()) {
      std::printf("error: %s\n", outcome.status().ToString().c_str());
      return;
    }
    PrintResult(outcome->rows);
    const CostParams params;
    std::printf("cost: %.2f simulated seconds [%s]\n",
                outcome->meter_delta.SimulatedSeconds(params),
                outcome->meter_delta.ToString().c_str());
  }

  bool done() const { return done_; }

  void RunDemo() {
    const char* queries[] = {
        "\\tables",
        "select student.name, student.advisor from student "
        "where student.year >= 5 order by student.name limit 5",
        "\\explain select student.name, mercury.docid from student, mercury "
        "where 'query optimization' in mercury.title "
        "and student.name in mercury.author",
        "select distinct student.name from student, mercury "
        "where student.advisor in mercury.author "
        "and student.name in mercury.author order by student.name",
        "\\analyze select mercury.docid from student, mercury "
        "where 'filtering' in mercury.title "
        "and student.name in mercury.author",
        "\\meter",
    };
    for (const char* q : queries) {
      std::printf("textjoin> %s\n", q);
      HandleLine(q);
      std::printf("\n");
    }
  }

 private:
  void Analyze(const std::string& sql) {
    // Every Run() already carries the per-node profile and the plan it
    // belongs to; rendering EXPLAIN ANALYZE just needs the parsed query.
    auto query = ParseQuery(sql, workload_.text);
    if (!query.ok()) {
      std::printf("error: %s\n", query.status().ToString().c_str());
      return;
    }
    auto outcome = service_.Run(sql);
    if (!outcome.ok()) {
      std::printf("error: %s\n", outcome.status().ToString().c_str());
      return;
    }
    std::printf("%s",
                ExplainAnalyze(*outcome->plan, *query, outcome->profile)
                    .c_str());
    PrintResult(outcome->rows);
  }

  UniversityWorkload workload_;
  FederationService service_;
  bool done_ = false;
};

int Run() {
  UniversityConfig config;
  config.num_students = 100;
  config.num_documents = 2000;
  auto workload = BuildUniversity(config);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }
  Shell shell(std::move(*workload));

  if (isatty(fileno(stdin)) == 0) {
    // Unattended: run the demo tour and also drain any piped input.
    shell.RunDemo();
    std::string line;
    char buf[4096];
    while (std::fgets(buf, sizeof(buf), stdin) != nullptr && !shell.done()) {
      shell.HandleLine(buf);
    }
    return 0;
  }

  std::printf("textjoin shell — SQL over a federated university database.\n"
              "Try \\demo, \\tables, or a query; \\quit exits.\n");
  char buf[4096];
  for (;;) {
    std::printf("textjoin> ");
    std::fflush(stdout);
    if (std::fgets(buf, sizeof(buf), stdin) == nullptr) break;
    shell.HandleLine(buf);
    if (shell.done()) break;
  }
  return 0;
}

}  // namespace

int main() { return Run(); }
