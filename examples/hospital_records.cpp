// The hospital information system that motivates the paper's introduction
// ([YA94]): physicians query structured patient records together with
// external medical literature. Builds a small patient database and a
// MEDLINE-style corpus, then answers "for each cardiology inpatient, find
// recent literature about their diagnosis by their attending's group".
//
//   $ ./examples/hospital_records

#include <cstdio>
#include <string>
#include <vector>

#include "connector/remote_text_source.h"
#include "core/enumerator.h"
#include "core/executor.h"
#include "core/statistics.h"
#include "sql/parser.h"
#include "text/engine.h"

namespace {

using namespace textjoin;  // Example code; the library never does this.

Result<std::unique_ptr<Catalog>> BuildPatients() {
  auto catalog = std::make_unique<Catalog>();
  Schema schema;
  schema.AddColumn(Column{"patient", "id", ValueType::kInt64});
  schema.AddColumn(Column{"patient", "name", ValueType::kString});
  schema.AddColumn(Column{"patient", "ward", ValueType::kString});
  schema.AddColumn(Column{"patient", "diagnosis", ValueType::kString});
  schema.AddColumn(Column{"patient", "attending", ValueType::kString});
  TEXTJOIN_ASSIGN_OR_RETURN(Table * table,
                            catalog->CreateTable("patient", schema));
  struct P {
    int64_t id;
    const char* name;
    const char* ward;
    const char* diagnosis;
    const char* attending;
  };
  const std::vector<P> patients = {
      {1, "Alice Carter", "cardiology", "atrial fibrillation", "Dr Hale"},
      {2, "Ben Okafor", "cardiology", "myocardial infarction", "Dr Hale"},
      {3, "Carla Diaz", "oncology", "lymphoma", "Dr Ng"},
      {4, "Dev Patel", "cardiology", "heart failure", "Dr Moss"},
      {5, "Erin Walsh", "neurology", "epilepsy", "Dr Ng"},
      {6, "Farid Khan", "cardiology", "atrial fibrillation", "Dr Moss"},
  };
  for (const P& p : patients) {
    TEXTJOIN_RETURN_IF_ERROR(table->Insert(
        {Value::Int(p.id), Value::Str(p.name), Value::Str(p.ward),
         Value::Str(p.diagnosis), Value::Str(p.attending)}));
  }
  return catalog;
}

Result<std::unique_ptr<TextEngine>> BuildLiterature() {
  auto engine = std::make_unique<TextEngine>();
  struct D {
    const char* docid;
    const char* title;
    std::vector<std::string> authors;
    const char* journal;
  };
  const std::vector<D> docs = {
      {"PMID1", "Management of atrial fibrillation in the elderly",
       {"Dr Hale", "Dr Roy"}, "Cardiology Today"},
      {"PMID2", "Anticoagulation after myocardial infarction",
       {"Dr Moss"}, "Heart Journal"},
      {"PMID3", "Atrial fibrillation ablation outcomes",
       {"Dr Moss", "Dr Hale"}, "Heart Journal"},
      {"PMID4", "Lymphoma staging revisited", {"Dr Ng"}, "Oncology Letters"},
      {"PMID5", "Epilepsy surgery candidacy", {"Dr Stein"}, "Brain"},
      {"PMID6", "Heart failure with preserved ejection fraction",
       {"Dr Roy"}, "Cardiology Today"},
      {"PMID7", "Exercise and heart failure", {"Dr Moss"}, "Heart Journal"},
      {"PMID8", "Stroke prevention in atrial fibrillation",
       {"Dr Hale"}, "Neurology Now"},
  };
  for (const D& d : docs) {
    Document doc;
    doc.docid = d.docid;
    doc.fields["title"] = {d.title};
    doc.fields["author"] = d.authors;
    doc.fields["journal"] = {d.journal};
    Result<DocNum> added = engine->AddDocument(std::move(doc));
    if (!added.ok()) return added.status();
  }
  return engine;
}

int Run() {
  auto catalog = BuildPatients();
  auto engine = BuildLiterature();
  if (!catalog.ok() || !engine.ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }
  RemoteTextSource source(engine->get());
  TextRelationDecl medline;
  medline.alias = "medline";
  medline.fields = {"title", "author", "journal"};

  // Literature about each cardiology patient's diagnosis, written by their
  // own attending physician: a foreign join on two text predicates.
  const std::string sql =
      "select patient.name, patient.diagnosis, medline.docid, medline.title "
      "from patient, medline "
      "where patient.ward = 'cardiology' "
      "and patient.diagnosis in medline.title "
      "and patient.attending in medline.author";
  Result<FederatedQuery> query = ParseQuery(sql, medline);
  if (!query.ok()) {
    std::fprintf(stderr, "parse: %s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("Hospital query:\n  %s\n\n", query->ToString().c_str());

  StatsRegistry registry;
  Status stats = ComputeExactStats(*query, **catalog, **engine, registry);
  if (!stats.ok()) {
    std::fprintf(stderr, "stats: %s\n", stats.ToString().c_str());
    return 1;
  }
  Enumerator enumerator(catalog->get(), &registry, (*engine)->num_documents(),
                        (*engine)->max_search_terms(), EnumeratorOptions{});
  Result<PlanNodePtr> plan = enumerator.Optimize(*query);
  if (!plan.ok()) {
    std::fprintf(stderr, "optimize: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("Chosen plan:\n%s\n", (*plan)->ToString(*query).c_str());

  PlanExecutor executor(catalog->get(), &source);
  Result<ExecutionResult> result = executor.Execute(**plan, *query);
  if (!result.ok()) {
    std::fprintf(stderr, "execute: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("Literature matches (%zu):\n", result->rows.size());
  for (const Row& row : result->rows) {
    std::printf("  %-12s %-24s %-6s %s\n", row[0].AsString().c_str(),
                row[1].AsString().c_str(), row[2].AsString().c_str(),
                row[3].AsString().c_str());
  }
  const CostParams params;
  std::printf("\nServer accesses: %s (%.2f simulated seconds)\n",
              source.meter().ToString().c_str(),
              source.meter().SimulatedSeconds(params));
  return 0;
}

}  // namespace

int main() { return Run(); }
